// Weighted Hilbert space-filling-curve partitioner (ROADMAP item 2).
//
// The paper treats the partitioner as pluggable ("any mesh partitioning
// algorithm can be used here, as long as it quickly delivers partitions
// that are reasonably balanced").  This module provides the fast path
// the follow-on SFC literature (Borrell et al., PAPERS.md) settled on:
//
//   1. Every dual vertex gets a 63-bit *Hilbert key*: its centroid is
//      quantized to a 21-bit lattice per axis against the global
//      bounding box and encoded with a branchless 3-D Hilbert curve
//      (Skilling's transpose form with the conditionals replaced by
//      masks).  Keys depend only on the immutable initial-mesh
//      centroids, so they are computed once per run and cached on the
//      dual graph; adaption never invalidates them.
//
//   2. Partitioning reduces to choosing k-1 *splitters* along the curve
//      so each key range carries ~W/k computational weight.  Splitters
//      are found by iterative weighted histogram refinement — 8 rounds
//      of 256-bucket histograms narrow each splitter to an exact key,
//      then a tie pass splits equal-key runs by vertex id — O(N) per
//      round with no global sort and no per-rank global state beyond
//      the (replicated) weight vector the balance pipeline already
//      holds.
//
// Because elements keep their curve keys across adaption, repartition
// after adaption is a splitter *update*, not a from-scratch solve; the
// incremental driver lives in balance/repart.{hpp,cpp} and reuses
// solve_splitter_targets() below.
#pragma once

#include <cstdint>
#include <vector>

#include "dualgraph/dual_graph.hpp"

namespace plum::partition {

/// Lattice resolution per axis; 3*21 = 63 key bits fit a uint64.
inline constexpr int kSfcBitsPerAxis = 21;

/// Hilbert index of lattice cell (x, y, z), coordinates in
/// [0, 2^bits); the result occupies the low 3*bits bits.
std::uint64_t hilbert_key(std::uint32_t x, std::uint32_t y, std::uint32_t z,
                          int bits = kSfcBitsPerAxis);

/// Inverse of hilbert_key (exposed for the bijectivity/locality tests).
void hilbert_decode(std::uint64_t key, std::uint32_t* x, std::uint32_t* y,
                    std::uint32_t* z, int bits = kSfcBitsPerAxis);

/// Hilbert keys of every dual-vertex centroid, quantized against the
/// graph's global centroid bounding box.
std::vector<std::uint64_t> compute_sfc_keys(const dual::DualGraph& g);

/// Fills g.sfc_key (once; no-op when already sized) and returns it.
/// The cache survives weight refreshes — centroids never change.
const std::vector<std::uint64_t>& ensure_sfc_keys(dual::DualGraph& g);

/// A position on the curve: vertex v lies *below* the splitter iff
/// (key[v], v) < (key, vid) lexicographically.  The vid threshold
/// resolves runs of equal keys deterministically.
struct SfcSplitter {
  std::uint64_t key = 0;
  std::int32_t vid = 0;

  friend bool operator<(const SfcSplitter& a, const SfcSplitter& b) {
    return a.key != b.key ? a.key < b.key : a.vid < b.vid;
  }
};

/// True iff vertex (key, vid) lies below the splitter.
inline bool below_splitter(std::uint64_t key, std::int32_t vid,
                           const SfcSplitter& s) {
  return key != s.key ? key < s.key : vid < s.vid;
}

/// Core histogram solver: for each strictly-increasing cumulative
/// weight target G, returns the smallest splitter S with
/// weight{(key,vid) < S} >= G.  One 256-bucket histogram pass per key
/// digit (8 rounds for 63-bit keys), then a tie pass over equal-key
/// runs; no sort.  Targets must satisfy 0 < G <= total weight.
std::vector<SfcSplitter> solve_splitter_targets(
    const std::vector<std::uint64_t>& keys,
    const std::vector<std::int64_t>& weight,
    const std::vector<std::int64_t>& targets);

/// From-scratch splitter selection for `nparts` parts with targets
/// G_i = floor(W*(i+1)/k).  Guarantees max part weight <=
/// ceil(W/k) + max vertex weight.
std::vector<SfcSplitter> select_splitters(
    const std::vector<std::uint64_t>& keys,
    const std::vector<std::int64_t>& weight, int nparts);

/// Part id per vertex: the number of splitters at or below (key[v], v).
std::vector<PartId> parts_from_splitters(
    const std::vector<std::uint64_t>& keys,
    const std::vector<SfcSplitter>& splitters);

/// Weight per part under `splitters` (k = splitters.size() + 1 parts)
/// without materializing the part vector.
std::vector<std::int64_t> splitter_part_weights(
    const std::vector<std::uint64_t>& keys,
    const std::vector<std::int64_t>& weight,
    const std::vector<SfcSplitter>& splitters);

}  // namespace plum::partition
