// Shared recursive-bisection machinery (internal to the partition
// module).
//
// All recursive partitioners are bisectors: split the vertex set in
// two with a weight target, recurse on each side.  Uneven part counts
// are handled by splitting k into floor(k/2) / ceil(k/2) and sizing the
// weight target proportionally, so any k (not just powers of two) works.
//
// The recursion works in place on a single index array — each level
// stably partitions its [subset, subset+n) range into left|right and
// recurses on the halves — and every per-level buffer a bisector needs
// (side flags, sort keys, permutation) lives in one BisectScratch that
// is allocated once per partition() call, so no vector is allocated at
// recursion depth.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "dualgraph/dual_graph.hpp"

namespace plum::partition::detail {

/// Reusable per-partition() buffers, threaded through the recursion.
/// Capacity grows to the root subset size once and is reused at every
/// level below.
struct BisectScratch {
  /// Bisector output: side[i] is 0/1 for subset[i].
  std::vector<char> side;
  /// Scalar sort keys for order-based bisectors.
  std::vector<double> value;
  /// Per-axis centroid coordinates (filled by the RCB bounding-box
  /// pass, so the cut axis's keys need no second centroid sweep).
  std::array<std::vector<double>, 3> coord;
  /// Permutation buffer of split_by_order.
  std::vector<std::int32_t> order;
};

/// Splits subset[0..n) (indices into g) into two sides, leaving the
/// verdict in scratch.side (resized to n; side[i] is 0/1 for
/// subset[i]).  `target_left` is the desired total wcomp of side 0.
using Bisector = std::function<void(
    const dual::DualGraph& g, const std::int32_t* subset, std::size_t n,
    std::int64_t target_left, BisectScratch& scratch)>;

/// Runs the full recursion; returns a part id per dual vertex.
std::vector<PartId> recursive_partition(const dual::DualGraph& g, int nparts,
                                        const Bisector& bisect);

/// Order-based split: sorts subset by `value` (vertex-id tie-break) and
/// cuts at the weighted position closest to target_left, writing the
/// verdict to scratch.side.  The workhorse for the geometric and
/// spectral bisectors.  `value` may alias a scratch buffer.
void split_by_order(const dual::DualGraph& g, const std::int32_t* subset,
                    std::size_t n, const std::vector<double>& value,
                    std::int64_t target_left, BisectScratch& scratch);

/// Induced subgraph of subset[0..n) with local indices (adjacency
/// restricted to the subset, edge weights collapsed to counts).
struct Subgraph {
  std::vector<std::vector<std::int32_t>> adjacency;  // local indices
  /// Communication weight per adjacency entry (parallel array).
  std::vector<std::vector<std::int64_t>> eweight;
  std::vector<std::int64_t> weight;                  // wcomp
  std::vector<std::int32_t> global;                  // local -> g vertex
};
Subgraph induce(const dual::DualGraph& g, const std::int32_t* subset,
                std::size_t n);

}  // namespace plum::partition::detail
