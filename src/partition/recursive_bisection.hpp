// Shared recursive-bisection machinery (internal to the partition
// module).
//
// All four partitioners are recursive bisectors: split the vertex set in
// two with a weight target, recurse on each side.  Uneven part counts
// are handled by splitting k into floor(k/2) / ceil(k/2) and sizing the
// weight target proportionally, so any k (not just powers of two) works.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "dualgraph/dual_graph.hpp"

namespace plum::partition::detail {

/// Splits `subset` (indices into g) into two sides; side[i] is 0/1 for
/// subset[i].  `target_left` is the desired total wcomp of side 0.
using Bisector = std::function<std::vector<char>(
    const dual::DualGraph& g, const std::vector<std::int32_t>& subset,
    std::int64_t target_left)>;

/// Runs the full recursion; returns a part id per dual vertex.
std::vector<PartId> recursive_partition(const dual::DualGraph& g, int nparts,
                                        const Bisector& bisect);

/// Order-based split: sorts subset by `value` (vertex-id tie-break) and
/// cuts at the weighted position closest to target_left.  The workhorse
/// for the geometric and spectral bisectors.
std::vector<char> split_by_order(const dual::DualGraph& g,
                                 const std::vector<std::int32_t>& subset,
                                 const std::vector<double>& value,
                                 std::int64_t target_left);

/// Induced subgraph of `subset` with local indices (adjacency restricted
/// to the subset, edge weights collapsed to counts).
struct Subgraph {
  std::vector<std::vector<std::int32_t>> adjacency;  // local indices
  /// Communication weight per adjacency entry (parallel array).
  std::vector<std::vector<std::int64_t>> eweight;
  std::vector<std::int64_t> weight;                  // wcomp
  std::vector<std::int32_t> global;                  // local -> g vertex
};
Subgraph induce(const dual::DualGraph& g,
                const std::vector<std::int32_t>& subset);

}  // namespace plum::partition::detail
