// Geometric partitioners: recursive coordinate bisection (RCB) and
// recursive inertial bisection (RIB).  Both order each subset by a
// scalar coordinate and cut at the weighted median — RCB along the
// widest bounding-box axis, RIB along the principal inertia axis of the
// element centroids (the "inertial" half of the paper's companion
// inertial-spectral repartitioner [13]).
#include <array>
#include <cmath>

#include "partition/partitioner.hpp"
#include "partition/recursive_bisection.hpp"
#include "support/check.hpp"

namespace plum::partition {

namespace {

using detail::split_by_order;
using dual::DualGraph;
using mesh::Vec3;

std::vector<char> rcb_bisect(const DualGraph& g,
                             const std::vector<std::int32_t>& subset,
                             std::int64_t target_left) {
  Vec3 lo = g.centroid[static_cast<std::size_t>(subset.front())];
  Vec3 hi = lo;
  for (const auto v : subset) {
    const Vec3& c = g.centroid[static_cast<std::size_t>(v)];
    lo.x = std::min(lo.x, c.x);
    lo.y = std::min(lo.y, c.y);
    lo.z = std::min(lo.z, c.z);
    hi.x = std::max(hi.x, c.x);
    hi.y = std::max(hi.y, c.y);
    hi.z = std::max(hi.z, c.z);
  }
  const Vec3 ext = hi - lo;
  int axis = 0;
  if (ext.y > ext.x) axis = 1;
  if (ext.z > (axis == 0 ? ext.x : ext.y)) axis = 2;

  std::vector<double> value(subset.size());
  for (std::size_t i = 0; i < subset.size(); ++i) {
    const Vec3& c = g.centroid[static_cast<std::size_t>(subset[i])];
    value[i] = axis == 0 ? c.x : axis == 1 ? c.y : c.z;
  }
  return split_by_order(g, subset, value, target_left);
}

/// Principal axis of the weighted covariance of subset centroids, by
/// 3x3 power iteration (deterministic start, fixed iteration count).
Vec3 principal_axis(const DualGraph& g,
                    const std::vector<std::int32_t>& subset) {
  Vec3 mean{};
  double wsum = 0.0;
  for (const auto v : subset) {
    const double w = static_cast<double>(g.wcomp[static_cast<std::size_t>(v)]);
    mean += g.centroid[static_cast<std::size_t>(v)] * w;
    wsum += w;
  }
  PLUM_CHECK(wsum > 0.0);
  mean = mean * (1.0 / wsum);

  std::array<double, 9> cov{};  // row-major 3x3
  for (const auto v : subset) {
    const double w = static_cast<double>(g.wcomp[static_cast<std::size_t>(v)]);
    const Vec3 d = g.centroid[static_cast<std::size_t>(v)] - mean;
    const double c[3] = {d.x, d.y, d.z};
    for (int r = 0; r < 3; ++r) {
      for (int cc = 0; cc < 3; ++cc) {
        cov[static_cast<std::size_t>(r * 3 + cc)] += w * c[r] * c[cc];
      }
    }
  }

  Vec3 x{1.0, 0.7, 0.4};  // deterministic, unlikely to be orthogonal
  for (int it = 0; it < 32; ++it) {
    const Vec3 y{cov[0] * x.x + cov[1] * x.y + cov[2] * x.z,
                 cov[3] * x.x + cov[4] * x.y + cov[5] * x.z,
                 cov[6] * x.x + cov[7] * x.y + cov[8] * x.z};
    const double n = mesh::norm(y);
    if (n < 1e-30) return {1.0, 0.0, 0.0};  // degenerate cloud: any axis
    x = y * (1.0 / n);
  }
  return x;
}

std::vector<char> rib_bisect(const DualGraph& g,
                             const std::vector<std::int32_t>& subset,
                             std::int64_t target_left) {
  const Vec3 axis = principal_axis(g, subset);
  std::vector<double> value(subset.size());
  for (std::size_t i = 0; i < subset.size(); ++i) {
    value[i] = mesh::dot(g.centroid[static_cast<std::size_t>(subset[i])], axis);
  }
  return split_by_order(g, subset, value, target_left);
}

class RcbPartitioner final : public Partitioner {
 public:
  std::string name() const override { return "rcb"; }

 protected:
  std::vector<PartId> compute(const DualGraph& g, int nparts) override {
    return detail::recursive_partition(g, nparts, rcb_bisect);
  }
};

class RibPartitioner final : public Partitioner {
 public:
  std::string name() const override { return "rib"; }

 protected:
  std::vector<PartId> compute(const DualGraph& g, int nparts) override {
    return detail::recursive_partition(g, nparts, rib_bisect);
  }
};

}  // namespace

std::unique_ptr<Partitioner> make_rcb() {
  return std::make_unique<RcbPartitioner>();
}
std::unique_ptr<Partitioner> make_rib() {
  return std::make_unique<RibPartitioner>();
}

}  // namespace plum::partition
