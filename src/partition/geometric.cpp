// Geometric partitioners: recursive coordinate bisection (RCB) and
// recursive inertial bisection (RIB).  Both order each subset by a
// scalar coordinate and cut at the weighted median — RCB along the
// widest bounding-box axis, RIB along the principal inertia axis of the
// element centroids (the "inertial" half of the paper's companion
// inertial-spectral repartitioner [13]).
//
// All per-level buffers live in the shared BisectScratch; the bisectors
// allocate nothing per recursion level.  RCB's single centroid sweep
// fills the bounding box and the three coordinate arrays together, so
// picking the cut axis costs no second pass over the centroids.
#include <array>
#include <cmath>

#include "partition/partitioner.hpp"
#include "partition/recursive_bisection.hpp"
#include "support/check.hpp"

namespace plum::partition {

namespace {

using detail::BisectScratch;
using detail::split_by_order;
using dual::DualGraph;
using mesh::Vec3;

void rcb_bisect(const DualGraph& g, const std::int32_t* subset,
                std::size_t n, std::int64_t target_left,
                BisectScratch& s) {
  std::vector<double>& cx = s.coord[0];
  std::vector<double>& cy = s.coord[1];
  std::vector<double>& cz = s.coord[2];
  cx.resize(n);
  cy.resize(n);
  cz.resize(n);
  Vec3 lo = g.centroid[static_cast<std::size_t>(subset[0])];
  Vec3 hi = lo;
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3& c = g.centroid[static_cast<std::size_t>(subset[i])];
    cx[i] = c.x;
    cy[i] = c.y;
    cz[i] = c.z;
    lo.x = std::min(lo.x, c.x);
    lo.y = std::min(lo.y, c.y);
    lo.z = std::min(lo.z, c.z);
    hi.x = std::max(hi.x, c.x);
    hi.y = std::max(hi.y, c.y);
    hi.z = std::max(hi.z, c.z);
  }
  const Vec3 ext = hi - lo;
  int axis = 0;
  if (ext.y > ext.x) axis = 1;
  if (ext.z > (axis == 0 ? ext.x : ext.y)) axis = 2;

  split_by_order(g, subset, n, s.coord[static_cast<std::size_t>(axis)],
                 target_left, s);
}

/// Principal axis of the weighted covariance of subset centroids, by
/// 3x3 power iteration (deterministic start, fixed iteration count).
Vec3 principal_axis(const DualGraph& g, const std::int32_t* subset,
                    std::size_t n) {
  Vec3 mean{};
  double wsum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto v = static_cast<std::size_t>(subset[i]);
    const double w = static_cast<double>(g.wcomp[v]);
    mean += g.centroid[v] * w;
    wsum += w;
  }
  PLUM_CHECK(wsum > 0.0);
  mean = mean * (1.0 / wsum);

  std::array<double, 9> cov{};  // row-major 3x3
  for (std::size_t i = 0; i < n; ++i) {
    const auto v = static_cast<std::size_t>(subset[i]);
    const double w = static_cast<double>(g.wcomp[v]);
    const Vec3 d = g.centroid[v] - mean;
    const double c[3] = {d.x, d.y, d.z};
    for (int r = 0; r < 3; ++r) {
      for (int cc = 0; cc < 3; ++cc) {
        cov[static_cast<std::size_t>(r * 3 + cc)] += w * c[r] * c[cc];
      }
    }
  }

  Vec3 x{1.0, 0.7, 0.4};  // deterministic, unlikely to be orthogonal
  for (int it = 0; it < 32; ++it) {
    const Vec3 y{cov[0] * x.x + cov[1] * x.y + cov[2] * x.z,
                 cov[3] * x.x + cov[4] * x.y + cov[5] * x.z,
                 cov[6] * x.x + cov[7] * x.y + cov[8] * x.z};
    const double nrm = mesh::norm(y);
    if (nrm < 1e-30) return {1.0, 0.0, 0.0};  // degenerate cloud: any axis
    x = y * (1.0 / nrm);
  }
  return x;
}

void rib_bisect(const DualGraph& g, const std::int32_t* subset,
                std::size_t n, std::int64_t target_left,
                BisectScratch& s) {
  const Vec3 axis = principal_axis(g, subset, n);
  s.value.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    s.value[i] =
        mesh::dot(g.centroid[static_cast<std::size_t>(subset[i])], axis);
  }
  split_by_order(g, subset, n, s.value, target_left, s);
}

class RcbPartitioner final : public Partitioner {
 public:
  std::string name() const override { return "rcb"; }

 protected:
  std::vector<PartId> compute(const DualGraph& g, int nparts) override {
    return detail::recursive_partition(g, nparts, rcb_bisect);
  }
};

class RibPartitioner final : public Partitioner {
 public:
  std::string name() const override { return "rib"; }

 protected:
  std::vector<PartId> compute(const DualGraph& g, int nparts) override {
    return detail::recursive_partition(g, nparts, rib_bisect);
  }
};

}  // namespace

std::unique_ptr<Partitioner> make_rcb() {
  return std::make_unique<RcbPartitioner>();
}
std::unique_ptr<Partitioner> make_rib() {
  return std::make_unique<RibPartitioner>();
}

}  // namespace plum::partition
