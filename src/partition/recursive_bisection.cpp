#include "partition/recursive_bisection.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "support/check.hpp"

namespace plum::partition::detail {

namespace {

/// In-place range recursion: stably partitions subset[0..n) by the
/// bisector's verdict (via `tmp`, so relative order — and with it every
/// downstream comparison — matches the historical copy-out recursion
/// bit for bit) and recurses on the two halves.
void recurse(const dual::DualGraph& g, const Bisector& bisect,
             std::int32_t* subset, std::size_t n, int nparts,
             PartId first_part, std::vector<PartId>* out,
             BisectScratch& scratch, std::vector<std::int32_t>& tmp) {
  if (nparts == 1) {
    for (std::size_t i = 0; i < n; ++i) {
      (*out)[static_cast<std::size_t>(subset[i])] = first_part;
    }
    return;
  }
  // Degenerate subsets (possible with heavy vertex weights, e.g. on
  // agglomerated graphs, where one vertex can "deserve" several parts):
  // one vertex per part, surplus parts stay empty.
  if (static_cast<int>(n) <= nparts) {
    for (std::size_t i = 0; i < n; ++i) {
      (*out)[static_cast<std::size_t>(subset[i])] =
          first_part + static_cast<PartId>(i);
    }
    return;
  }
  const int kl = nparts / 2;
  const int kr = nparts - kl;
  std::int64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += g.wcomp[static_cast<std::size_t>(subset[i])];
  }
  const std::int64_t target_left =
      total * kl / nparts;  // proportional for odd k

  bisect(g, subset, n, target_left, scratch);
  PLUM_CHECK(scratch.side.size() == n);
  // Stable in-place split: side-0 entries compact to the front (the
  // write cursor never overtakes the read cursor), side-1 entries park
  // in tmp and are copied back behind them.
  tmp.clear();
  std::size_t nl = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (scratch.side[i] == 0) {
      subset[nl++] = subset[i];
    } else {
      tmp.push_back(subset[i]);
    }
  }
  std::copy(tmp.begin(), tmp.end(), subset + nl);
  // A degenerate bisection (everything on one side) cannot be recursed;
  // move one vertex across so both sides are populated (the small side
  // is then handled by the degenerate-subset guard above).
  if (nl == 0) {
    std::rotate(subset, subset + n - 1, subset + n);
    nl = 1;
  } else if (nl == n) {
    nl = n - 1;
  }
  recurse(g, bisect, subset, nl, kl, first_part, out, scratch, tmp);
  recurse(g, bisect, subset + nl, n - nl, kr, first_part + kl, out, scratch,
          tmp);
}

}  // namespace

std::vector<PartId> recursive_partition(const dual::DualGraph& g, int nparts,
                                        const Bisector& bisect) {
  PLUM_CHECK_MSG(nparts >= 1, "nparts must be positive");
  PLUM_CHECK_MSG(g.num_vertices() >= nparts,
                 "fewer dual vertices than partitions");
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  std::vector<PartId> out(n, kNoPart);
  std::vector<std::int32_t> all(n);
  std::iota(all.begin(), all.end(), 0);
  BisectScratch scratch;
  scratch.side.reserve(n);
  scratch.order.reserve(n);
  std::vector<std::int32_t> tmp;
  tmp.reserve(n);
  recurse(g, bisect, all.data(), n, nparts, 0, &out, scratch, tmp);
  return out;
}

void split_by_order(const dual::DualGraph& g, const std::int32_t* subset,
                    std::size_t n, const std::vector<double>& value,
                    std::int64_t target_left, BisectScratch& scratch) {
  PLUM_CHECK(value.size() >= n);
  std::vector<std::int32_t>& order = scratch.order;
  order.resize(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::int32_t a, std::int32_t b) {
              if (value[static_cast<std::size_t>(a)] !=
                  value[static_cast<std::size_t>(b)]) {
                return value[static_cast<std::size_t>(a)] <
                       value[static_cast<std::size_t>(b)];
              }
              return subset[static_cast<std::size_t>(a)] <
                     subset[static_cast<std::size_t>(b)];
            });
  // Walk the prefix; stop at the point whose cumulative weight is
  // closest to the target (never take the empty or full prefix).
  scratch.side.assign(n, 1);
  std::int64_t acc = 0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const auto v = subset[static_cast<std::size_t>(order[i])];
    const std::int64_t w = g.wcomp[static_cast<std::size_t>(v)];
    // Include this vertex if doing so moves us no further from the
    // target than stopping would.
    if (acc >= target_left &&
        std::llabs(acc - target_left) <= std::llabs(acc + w - target_left)) {
      break;
    }
    scratch.side[static_cast<std::size_t>(order[i])] = 0;
    acc += w;
  }
}

Subgraph induce(const dual::DualGraph& g, const std::int32_t* subset,
                std::size_t n) {
  Subgraph s;
  s.global.assign(subset, subset + n);
  s.adjacency.assign(n, {});
  s.eweight.assign(n, {});
  s.weight.assign(n, 0);
  std::unordered_map<std::int32_t, std::int32_t> local;
  local.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    local[subset[i]] = static_cast<std::int32_t>(i);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const auto gv = static_cast<std::size_t>(subset[i]);
    s.weight[i] = g.wcomp[gv];
    for (std::size_t k = 0; k < g.adjacency[gv].size(); ++k) {
      const auto it = local.find(g.adjacency[gv][k]);
      if (it != local.end()) {
        s.adjacency[i].push_back(it->second);
        s.eweight[i].push_back(g.weight_of(gv, k));
      }
    }
  }
  return s;
}

}  // namespace plum::partition::detail
