#include "partition/recursive_bisection.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "support/check.hpp"

namespace plum::partition::detail {

namespace {

void recurse(const dual::DualGraph& g, const Bisector& bisect,
             std::vector<std::int32_t> subset, int nparts, PartId first_part,
             std::vector<PartId>* out) {
  if (nparts == 1) {
    for (const auto v : subset) {
      (*out)[static_cast<std::size_t>(v)] = first_part;
    }
    return;
  }
  // Degenerate subsets (possible with heavy vertex weights, e.g. on
  // agglomerated graphs, where one vertex can "deserve" several parts):
  // one vertex per part, surplus parts stay empty.
  if (static_cast<int>(subset.size()) <= nparts) {
    for (std::size_t i = 0; i < subset.size(); ++i) {
      (*out)[static_cast<std::size_t>(subset[i])] =
          first_part + static_cast<PartId>(i);
    }
    return;
  }
  const int kl = nparts / 2;
  const int kr = nparts - kl;
  std::int64_t total = 0;
  for (const auto v : subset) total += g.wcomp[static_cast<std::size_t>(v)];
  const std::int64_t target_left =
      total * kl / nparts;  // proportional for odd k

  const std::vector<char> side = bisect(g, subset, target_left);
  PLUM_CHECK(side.size() == subset.size());
  std::vector<std::int32_t> left, right;
  left.reserve(subset.size());
  right.reserve(subset.size());
  for (std::size_t i = 0; i < subset.size(); ++i) {
    (side[i] == 0 ? left : right).push_back(subset[i]);
  }
  // A degenerate bisection (everything on one side) cannot be recursed;
  // move one vertex across so both sides are populated (the small side
  // is then handled by the degenerate-subset guard above).
  if (left.empty() && right.size() > 1) {
    left.push_back(right.back());
    right.pop_back();
  } else if (right.empty() && left.size() > 1) {
    right.push_back(left.back());
    left.pop_back();
  }
  recurse(g, bisect, std::move(left), kl, first_part, out);
  recurse(g, bisect, std::move(right), kr, first_part + kl, out);
}

}  // namespace

std::vector<PartId> recursive_partition(const dual::DualGraph& g, int nparts,
                                        const Bisector& bisect) {
  PLUM_CHECK_MSG(nparts >= 1, "nparts must be positive");
  PLUM_CHECK_MSG(g.num_vertices() >= nparts,
                 "fewer dual vertices than partitions");
  std::vector<PartId> out(static_cast<std::size_t>(g.num_vertices()),
                          kNoPart);
  std::vector<std::int32_t> all(static_cast<std::size_t>(g.num_vertices()));
  std::iota(all.begin(), all.end(), 0);
  recurse(g, bisect, std::move(all), nparts, 0, &out);
  return out;
}

std::vector<char> split_by_order(const dual::DualGraph& g,
                                 const std::vector<std::int32_t>& subset,
                                 const std::vector<double>& value,
                                 std::int64_t target_left) {
  PLUM_CHECK(value.size() == subset.size());
  std::vector<std::int32_t> order(subset.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::int32_t a, std::int32_t b) {
              if (value[static_cast<std::size_t>(a)] !=
                  value[static_cast<std::size_t>(b)]) {
                return value[static_cast<std::size_t>(a)] <
                       value[static_cast<std::size_t>(b)];
              }
              return subset[static_cast<std::size_t>(a)] <
                     subset[static_cast<std::size_t>(b)];
            });
  // Walk the prefix; stop at the point whose cumulative weight is
  // closest to the target (never take the empty or full prefix).
  std::vector<char> side(subset.size(), 1);
  std::int64_t acc = 0;
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    const auto v =
        subset[static_cast<std::size_t>(order[i])];
    const std::int64_t w = g.wcomp[static_cast<std::size_t>(v)];
    // Include this vertex if doing so moves us no further from the
    // target than stopping would.
    if (acc >= target_left &&
        std::llabs(acc - target_left) <= std::llabs(acc + w - target_left)) {
      break;
    }
    side[static_cast<std::size_t>(order[i])] = 0;
    acc += w;
  }
  return side;
}

Subgraph induce(const dual::DualGraph& g,
                const std::vector<std::int32_t>& subset) {
  Subgraph s;
  s.global = subset;
  s.adjacency.assign(subset.size(), {});
  s.eweight.assign(subset.size(), {});
  s.weight.assign(subset.size(), 0);
  std::unordered_map<std::int32_t, std::int32_t> local;
  local.reserve(subset.size());
  for (std::size_t i = 0; i < subset.size(); ++i) {
    local[subset[i]] = static_cast<std::int32_t>(i);
  }
  for (std::size_t i = 0; i < subset.size(); ++i) {
    const auto gv = static_cast<std::size_t>(subset[i]);
    s.weight[i] = g.wcomp[gv];
    for (std::size_t k = 0; k < g.adjacency[gv].size(); ++k) {
      const auto it = local.find(g.adjacency[gv][k]);
      if (it != local.end()) {
        s.adjacency[i].push_back(it->second);
        s.eweight[i].push_back(g.weight_of(gv, k));
      }
    }
  }
  return s;
}

}  // namespace plum::partition::detail
