#include "partition/sfc.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "partition/partitioner.hpp"
#include "support/check.hpp"

namespace plum::partition {

namespace {

/// Number of 8-bit histogram digits covering a 3*bits-bit key.
inline int num_digits(int bits) { return (3 * bits + 7) / 8; }

}  // namespace

// Skilling's AxestoTranspose ("Programming the Hilbert curve", 2004)
// with the per-bit conditionals replaced by mask arithmetic so the
// inner loop is branch-free: `m` is all-ones when the probed bit is
// set, selecting the invert step; all-zeros selects the exchange step.
std::uint64_t hilbert_key(std::uint32_t x, std::uint32_t y, std::uint32_t z,
                          int bits) {
  std::uint32_t X[3] = {x, y, z};
  // Inverse undo of the excess work.
  for (std::uint32_t q = 1u << (bits - 1); q > 1; q >>= 1) {
    const std::uint32_t p = q - 1;
    for (int i = 0; i < 3; ++i) {
      const std::uint32_t m = -static_cast<std::uint32_t>((X[i] & q) != 0);
      const std::uint32_t t = ((X[0] ^ X[i]) & p) & ~m;
      X[0] ^= (p & m) ^ t;
      X[i] ^= t;
    }
  }
  // Gray encode.
  X[1] ^= X[0];
  X[2] ^= X[1];
  std::uint32_t t = 0;
  for (std::uint32_t q = 1u << (bits - 1); q > 1; q >>= 1) {
    t ^= (q - 1) & -static_cast<std::uint32_t>((X[2] & q) != 0);
  }
  X[0] ^= t;
  X[1] ^= t;
  X[2] ^= t;
  // The transpose form distributes the index round-robin across axes,
  // X[0] most significant: collect bit b of X[0], X[1], X[2] in turn.
  std::uint64_t key = 0;
  for (int b = bits - 1; b >= 0; --b) {
    for (int i = 0; i < 3; ++i) {
      key = (key << 1) | ((X[i] >> b) & 1u);
    }
  }
  return key;
}

void hilbert_decode(std::uint64_t key, std::uint32_t* x, std::uint32_t* y,
                    std::uint32_t* z, int bits) {
  std::uint32_t X[3] = {0, 0, 0};
  for (int b = bits - 1; b >= 0; --b) {
    for (int i = 0; i < 3; ++i) {
      X[i] |= static_cast<std::uint32_t>(
                  (key >> (3 * b + (2 - i))) & 1u)
              << b;
    }
  }
  // Gray decode by H ^ (H/2).
  std::uint32_t t = X[2] >> 1;
  X[2] ^= X[1];
  X[1] ^= X[0];
  X[0] ^= t;
  // Undo the excess work (inverse of the encode's first loop).
  for (std::uint32_t q = 2; q != (1u << bits); q <<= 1) {
    const std::uint32_t p = q - 1;
    for (int i = 2; i >= 0; --i) {
      const std::uint32_t m = -static_cast<std::uint32_t>((X[i] & q) != 0);
      const std::uint32_t u = ((X[0] ^ X[i]) & p) & ~m;
      X[0] ^= (p & m) ^ u;
      X[i] ^= u;
    }
  }
  *x = X[0];
  *y = X[1];
  *z = X[2];
}

std::vector<std::uint64_t> compute_sfc_keys(const dual::DualGraph& g) {
  const std::size_t n = g.centroid.size();
  std::vector<std::uint64_t> keys(n, 0);
  if (n == 0) return keys;
  mesh::Vec3 lo = g.centroid[0];
  mesh::Vec3 hi = g.centroid[0];
  for (const mesh::Vec3& c : g.centroid) {
    lo.x = std::min(lo.x, c.x);
    lo.y = std::min(lo.y, c.y);
    lo.z = std::min(lo.z, c.z);
    hi.x = std::max(hi.x, c.x);
    hi.y = std::max(hi.y, c.y);
    hi.z = std::max(hi.z, c.z);
  }
  const double span = static_cast<double>((1u << kSfcBitsPerAxis) - 1);
  // Degenerate (flat) axes map to lattice coordinate 0 everywhere.
  const double sx = hi.x > lo.x ? span / (hi.x - lo.x) : 0.0;
  const double sy = hi.y > lo.y ? span / (hi.y - lo.y) : 0.0;
  const double sz = hi.z > lo.z ? span / (hi.z - lo.z) : 0.0;
  const auto quantize = [span](double v) {
    return static_cast<std::uint32_t>(
        std::llround(std::clamp(v, 0.0, span)));
  };
  for (std::size_t i = 0; i < n; ++i) {
    const mesh::Vec3& c = g.centroid[i];
    keys[i] = hilbert_key(quantize((c.x - lo.x) * sx),
                          quantize((c.y - lo.y) * sy),
                          quantize((c.z - lo.z) * sz));
  }
  return keys;
}

const std::vector<std::uint64_t>& ensure_sfc_keys(dual::DualGraph& g) {
  if (g.sfc_key.size() != static_cast<std::size_t>(g.num_vertices())) {
    g.sfc_key = compute_sfc_keys(g);
  }
  return g.sfc_key;
}

std::vector<SfcSplitter> solve_splitter_targets(
    const std::vector<std::uint64_t>& keys,
    const std::vector<std::int64_t>& weight,
    const std::vector<std::int64_t>& targets) {
  const std::size_t n = keys.size();
  const std::size_t k = targets.size();
  PLUM_CHECK(weight.size() == n);
  std::vector<SfcSplitter> out(k);
  if (k == 0) return out;
  std::int64_t total = 0;
  for (const std::int64_t w : weight) total += w;
  for (std::size_t j = 0; j < k; ++j) {
    PLUM_CHECK_MSG(targets[j] > 0 && targets[j] <= total,
                   "splitter target " << targets[j] << " outside (0, "
                                      << total << "]");
    PLUM_CHECK(j == 0 || targets[j] >= targets[j - 1]);
  }

  // Invariant after each round: prefix[j] holds the decided high digits
  // of splitter j's key, wbelow[j] the weight of elements whose key's
  // prefix is strictly smaller, and
  //   wbelow[j] < targets[j] <= wbelow[j] + weight(prefix == prefix[j]).
  std::vector<std::uint64_t> prefix(k, 0);
  std::vector<std::int64_t> wbelow(k, 0);
  std::vector<std::uint64_t> distinct;
  std::vector<std::int64_t> hist;
  const int rounds = num_digits(kSfcBitsPerAxis);
  for (int r = 0; r < rounds; ++r) {
    const int s = 8 * (rounds - 1 - r);
    // Targets are non-decreasing, so prefixes are non-decreasing and
    // contiguous runs share a prefix.
    distinct.clear();
    for (std::size_t j = 0; j < k; ++j) {
      if (distinct.empty() || distinct.back() != prefix[j]) {
        distinct.push_back(prefix[j]);
      }
    }
    hist.assign(distinct.size() * 256, 0);
    for (std::size_t i = 0; i < n; ++i) {
      // (key >> s) >> 8, not key >> (s+8): s+8 can reach 64.
      const std::uint64_t p = (keys[i] >> s) >> 8;
      const auto it =
          std::lower_bound(distinct.begin(), distinct.end(), p);
      if (it == distinct.end() || *it != p) continue;
      const std::size_t grp =
          static_cast<std::size_t>(it - distinct.begin());
      hist[grp * 256 + ((keys[i] >> s) & 255u)] += weight[i];
    }
    std::size_t grp = 0;
    std::size_t d = 0;
    std::int64_t acc = 0;
    for (std::size_t j = 0; j < k; ++j) {
      if (distinct[grp] != prefix[j]) {
        ++grp;
        d = 0;
        acc = 0;
      }
      const std::int64_t* h = &hist[grp * 256];
      while (d < 255 && wbelow[j] + acc + h[d] < targets[j]) {
        acc += h[d];
        ++d;
      }
      prefix[j] = (prefix[j] << 8) | static_cast<std::uint64_t>(d);
      wbelow[j] += acc;
    }
  }

  // Tie pass: prefix[j] is now the exact key at which splitter j's
  // target is crossed; split runs of equal keys by vertex id.  Gather
  // (vid, weight) for every element on a boundary key, sort by vid,
  // and advance a shared cursor per key group.
  distinct.clear();
  for (std::size_t j = 0; j < k; ++j) {
    if (distinct.empty() || distinct.back() != prefix[j]) {
      distinct.push_back(prefix[j]);
    }
  }
  std::vector<std::vector<std::pair<std::int32_t, std::int64_t>>> ties(
      distinct.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto it =
        std::lower_bound(distinct.begin(), distinct.end(), keys[i]);
    if (it == distinct.end() || *it != keys[i]) continue;
    ties[static_cast<std::size_t>(it - distinct.begin())].emplace_back(
        static_cast<std::int32_t>(i), weight[i]);
  }
  for (auto& t : ties) std::sort(t.begin(), t.end());
  std::size_t grp = 0;
  std::size_t pos = 0;
  std::int64_t acc = 0;
  for (std::size_t j = 0; j < k; ++j) {
    if (distinct[grp] != prefix[j]) {
      ++grp;
      pos = 0;
      acc = 0;
    }
    const auto& run = ties[grp];
    PLUM_CHECK_MSG(!run.empty(), "boundary key has no elements");
    while (pos + 1 < run.size() &&
           wbelow[j] + acc + run[pos].second < targets[j]) {
      acc += run[pos].second;
      ++pos;
    }
    // Smallest splitter with >= targets[j] weight below it: just above
    // the crossing element (same key, vid + 1).
    out[j] = {prefix[j], run[pos].first + 1};
  }
  return out;
}

std::vector<SfcSplitter> select_splitters(
    const std::vector<std::uint64_t>& keys,
    const std::vector<std::int64_t>& weight, int nparts) {
  PLUM_CHECK(nparts >= 1);
  if (nparts == 1 || keys.empty()) return {};
  std::int64_t total = 0;
  for (const std::int64_t w : weight) total += w;
  std::vector<std::int64_t> targets(
      static_cast<std::size_t>(nparts - 1));
  for (int j = 0; j + 1 < nparts; ++j) {
    // G_j = floor(W*(j+1)/k): part i's weight is G_i - G_{i-1} plus at
    // most the crossing element, so max part <= ceil(W/k) + w_max.
    targets[static_cast<std::size_t>(j)] =
        std::max<std::int64_t>(1, total * (j + 1) / nparts);
  }
  std::vector<SfcSplitter> spl =
      solve_splitter_targets(keys, weight, targets);

  // A vertex heavier than W/k can swallow several targets, leaving a
  // part empty.  When there are enough vertices to populate every
  // part, fall back to sorted order with positions clamped to be
  // strictly increasing and to leave room for the remaining parts.
  const std::int64_t n = static_cast<std::int64_t>(keys.size());
  if (n >= nparts) {
    bool empty_part = false;
    const std::vector<std::int64_t> pw =
        splitter_part_weights(keys, weight, spl);
    for (const std::int64_t w : pw) empty_part |= (w == 0);
    if (empty_part) {
      std::vector<std::int32_t> order(keys.size());
      for (std::size_t i = 0; i < order.size(); ++i) {
        order[i] = static_cast<std::int32_t>(i);
      }
      std::sort(order.begin(), order.end(),
                [&](std::int32_t a, std::int32_t b) {
                  return keys[static_cast<std::size_t>(a)] !=
                                 keys[static_cast<std::size_t>(b)]
                             ? keys[static_cast<std::size_t>(a)] <
                                   keys[static_cast<std::size_t>(b)]
                             : a < b;
                });
      std::int64_t prev = 0;
      std::int64_t cum = 0;
      std::size_t at = 0;
      for (std::size_t j = 0; j + 1 < static_cast<std::size_t>(nparts);
           ++j) {
        while (at < order.size() &&
               cum < targets[j]) {
          cum += weight[static_cast<std::size_t>(order[at])];
          ++at;
        }
        std::int64_t m = static_cast<std::int64_t>(at);
        const std::int64_t jj = static_cast<std::int64_t>(j);
        m = std::clamp(m, prev + 1, n - (nparts - 2 - jj) - 1);
        prev = m;
        const std::int32_t v = order[static_cast<std::size_t>(m - 1)];
        spl[j] = {keys[static_cast<std::size_t>(v)], v + 1};
      }
    }
  }
  return spl;
}

std::vector<PartId> parts_from_splitters(
    const std::vector<std::uint64_t>& keys,
    const std::vector<SfcSplitter>& splitters) {
  std::vector<PartId> part(keys.size(), 0);
  if (splitters.empty()) return part;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const SfcSplitter e{keys[i], static_cast<std::int32_t>(i)};
    // Part id = number of splitters at or below this vertex.
    part[i] = static_cast<PartId>(
        std::upper_bound(splitters.begin(), splitters.end(), e,
                         [](const SfcSplitter& a, const SfcSplitter& b) {
                           return a < b;
                         }) -
        splitters.begin());
  }
  return part;
}

std::vector<std::int64_t> splitter_part_weights(
    const std::vector<std::uint64_t>& keys,
    const std::vector<std::int64_t>& weight,
    const std::vector<SfcSplitter>& splitters) {
  std::vector<std::int64_t> pw(splitters.size() + 1, 0);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const SfcSplitter e{keys[i], static_cast<std::int32_t>(i)};
    const std::size_t p = static_cast<std::size_t>(
        std::upper_bound(splitters.begin(), splitters.end(), e,
                         [](const SfcSplitter& a, const SfcSplitter& b) {
                           return a < b;
                         }) -
        splitters.begin());
    pw[p] += weight[i];
  }
  return pw;
}

namespace {

class HilbertPartitioner final : public Partitioner {
 public:
  std::string name() const override { return "hilbert"; }

 protected:
  std::vector<PartId> compute(const dual::DualGraph& g,
                              int nparts) override {
    const std::size_t n = static_cast<std::size_t>(g.num_vertices());
    std::vector<std::uint64_t> local;
    if (g.sfc_key.size() != n) local = compute_sfc_keys(g);
    const std::vector<std::uint64_t>& keys =
        g.sfc_key.size() == n ? g.sfc_key : local;
    return parts_from_splitters(
        keys, select_splitters(keys, g.wcomp, nparts));
  }
};

}  // namespace

std::unique_ptr<Partitioner> make_hilbert() {
  return std::make_unique<HilbertPartitioner>();
}

}  // namespace plum::partition
