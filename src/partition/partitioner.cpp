#include "partition/partitioner.hpp"

#include "support/check.hpp"

namespace plum::partition {

// Defined in geometric.cpp / spectral.cpp / multilevel.cpp.
std::unique_ptr<Partitioner> make_rcb();
std::unique_ptr<Partitioner> make_rib();
std::unique_ptr<Partitioner> make_spectral();
std::unique_ptr<Partitioner> make_multilevel();
std::unique_ptr<Partitioner> make_mlspectral();
// Defined in sfc.cpp.
std::unique_ptr<Partitioner> make_hilbert();

PartitionResult evaluate_partition(const dual::DualGraph& g,
                                   std::vector<PartId> part, int nparts) {
  PLUM_CHECK(static_cast<std::int64_t>(part.size()) == g.num_vertices());
  PartitionResult r;
  r.part_weight.assign(static_cast<std::size_t>(nparts), 0);
  for (std::size_t v = 0; v < part.size(); ++v) {
    PLUM_CHECK_MSG(part[v] >= 0 && part[v] < nparts,
                   "vertex " << v << " has invalid part " << part[v]);
    r.part_weight[static_cast<std::size_t>(part[v])] += g.wcomp[v];
  }
  for (std::size_t v = 0; v < part.size(); ++v) {
    for (std::size_t k = 0; k < g.adjacency[v].size(); ++k) {
      if (part[static_cast<std::size_t>(g.adjacency[v][k])] != part[v]) {
        r.edgecut += g.weight_of(v, k);
      }
    }
  }
  r.edgecut /= 2;
  std::int64_t wmax = 0, wsum = 0;
  for (const auto w : r.part_weight) {
    wmax = std::max(wmax, w);
    wsum += w;
  }
  r.imbalance = wsum > 0 ? static_cast<double>(wmax) * nparts /
                               static_cast<double>(wsum)
                         : 1.0;
  r.part = std::move(part);
  return r;
}

std::unique_ptr<Partitioner> make_partitioner(const std::string& name) {
  if (name == "rcb") return make_rcb();
  if (name == "rib") return make_rib();
  if (name == "spectral") return make_spectral();
  if (name == "multilevel") return make_multilevel();
  if (name == "mlspectral") return make_mlspectral();
  if (name == "hilbert") return make_hilbert();
  PLUM_CHECK_MSG(false, "unknown partitioner '" << name << "'");
  return nullptr;
}

std::vector<std::string> partitioner_names() {
  return {"rcb", "rib", "spectral", "multilevel", "mlspectral", "hilbert"};
}

}  // namespace plum::partition
