#include "balance/load_balancer.hpp"

#include "support/check.hpp"
#include "support/log.hpp"

namespace plum::balance {

BalanceOutcome run_load_balancer(const dual::DualGraph& g,
                                 const std::vector<Rank>& current,
                                 int nprocs, const LoadBalancerConfig& cfg) {
  PLUM_CHECK(static_cast<std::int64_t>(current.size()) == g.num_vertices());
  BalanceOutcome out;
  out.proc_of_vertex = current;
  out.old_load = compute_load(current, g.wcomp, nprocs);

  // Preliminary evaluation (§6): "If projecting the new values on the
  // current partitions indicates that they are adequately load
  // balanced, there is no need to repartition the mesh."
  if (out.old_load.imbalance <= cfg.imbalance_threshold) {
    PLUM_LOG_INFO("load balancer: imbalance "
                  << out.old_load.imbalance << " <= threshold "
                  << cfg.imbalance_threshold << ", no repartitioning");
    out.new_load = out.old_load;
    return out;
  }
  out.repartitioned = true;

  // Repartition into P*F parts.
  auto partitioner = partition::make_partitioner(cfg.partitioner);
  out.partition = partitioner->partition(g, nprocs * cfg.factor);

  // Processor reassignment (§8) via the similarity matrix (§7).
  const SimilarityMatrix s =
      SimilarityMatrix::build(current, out.partition.part, g.wremap, nprocs,
                              cfg.factor);
  auto remapper = make_remapper(cfg.remapper, cfg.seed);
  out.assignment = remapper->assign(s);

  // Cost calculation (§8): accept iff gain > redistribution cost.
  out.new_load = compute_load_after(out.partition.part,
                                    out.assignment.proc_of_part, g.wcomp,
                                    nprocs);
  const RemapCost rc = remap_cost(s, out.assignment, cfg.cost);
  out.decision = evaluate_remap_decision(out.old_load.wmax,
                                         out.new_load.wmax, rc, cfg.cost);
  out.accepted = cfg.use_cost_decision ? out.decision.accept : true;

  if (out.accepted) {
    for (std::size_t v = 0; v < out.proc_of_vertex.size(); ++v) {
      out.proc_of_vertex[v] =
          out.assignment
              .proc_of_part[static_cast<std::size_t>(out.partition.part[v])];
    }
  } else {
    // "Otherwise, the new partitioning is discarded and the flow
    //  calculation continues on the old partitions."
    out.new_load = out.old_load;
  }
  PLUM_LOG_INFO("load balancer: imbalance "
                << out.old_load.imbalance << " -> "
                << out.new_load.imbalance << ", moved "
                << out.decision.cost.elements_moved << " elements, "
                << (out.accepted ? "accepted" : "rejected"));
  return out;
}

}  // namespace plum::balance
