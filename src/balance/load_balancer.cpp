#include "balance/load_balancer.hpp"

#include "support/check.hpp"
#include "support/log.hpp"

namespace plum::balance {

std::string resolve_partitioner(const std::string& name, int nparts) {
  if (name != "auto") return name;
  return nparts >= 16 ? "hilbert" : "mlspectral";
}

BalanceOutcome run_load_balancer(const dual::DualGraph& g,
                                 const std::vector<Rank>& current,
                                 int nprocs, const LoadBalancerConfig& cfg,
                                 SfcRepartState* sfc_state) {
  PLUM_CHECK(static_cast<std::int64_t>(current.size()) == g.num_vertices());
  BalanceOutcome out;
  out.proc_of_vertex = current;
  out.old_load = compute_load(current, g.wcomp, nprocs);

  // Preliminary evaluation (§6): "If projecting the new values on the
  // current partitions indicates that they are adequately load
  // balanced, there is no need to repartition the mesh."
  if (out.old_load.imbalance <= cfg.imbalance_threshold) {
    PLUM_LOG_INFO("load balancer: imbalance "
                  << out.old_load.imbalance << " <= threshold "
                  << cfg.imbalance_threshold << ", no repartitioning");
    out.new_load = out.old_load;
    return out;
  }
  out.repartitioned = true;

  // Repartition into P*F parts.
  const int nparts = nprocs * cfg.factor;
  out.partitioner_used = resolve_partitioner(cfg.partitioner, nparts);
  if (out.partitioner_used == "hilbert") {
    // SFC path: splitter solve, seeded from the previous accepted
    // splitters when the caller carries state across cycles.
    SfcRepartConfig scfg;
    scfg.imbalance_tolerance = cfg.sfc_tolerance;
    const SfcRepartState* prev =
        cfg.sfc_incremental ? sfc_state : nullptr;
    out.sfc = run_sfc_repartitioner(g, nparts, scfg, prev);
    out.partition = partition::evaluate_partition(g, out.sfc.part, nparts);
  } else {
    auto partitioner = partition::make_partitioner(out.partitioner_used);
    out.partition = partitioner->partition(g, nparts);
  }

  // Processor reassignment (§8) via the similarity matrix (§7).
  const SimilarityMatrix s =
      SimilarityMatrix::build(current, out.partition.part, g.wremap, nprocs,
                              cfg.factor);
  auto remapper = make_remapper(cfg.remapper, cfg.seed);
  out.assignment = remapper->assign(s);

  // Cost calculation (§8): accept iff gain > redistribution cost.
  out.new_load = compute_load_after(out.partition.part,
                                    out.assignment.proc_of_part, g.wcomp,
                                    nprocs);
  const RemapCost rc = remap_cost(s, out.assignment, cfg.cost);
  out.decision = evaluate_remap_decision(out.old_load.wmax,
                                         out.new_load.wmax, rc, cfg.cost);
  out.accepted = cfg.use_cost_decision ? out.decision.accept : true;

  // Partition similarity of the *proposed* mapping: how many dual
  // vertices the plan would relocate.  (The remapper exists to keep
  // this small; incremental SFC keeps it small before remapping.)
  out.partition.vertices_changed = 0;
  for (std::size_t v = 0; v < current.size(); ++v) {
    const Rank dst =
        out.assignment
            .proc_of_part[static_cast<std::size_t>(out.partition.part[v])];
    out.partition.vertices_changed += (dst != current[v]);
  }

  if (out.accepted) {
    if (out.partitioner_used == "hilbert" && sfc_state != nullptr) {
      sfc_state->splitters = out.sfc.splitters;
      sfc_state->nparts = nparts;
    }
    for (std::size_t v = 0; v < out.proc_of_vertex.size(); ++v) {
      out.proc_of_vertex[v] =
          out.assignment
              .proc_of_part[static_cast<std::size_t>(out.partition.part[v])];
    }
  } else {
    // "Otherwise, the new partitioning is discarded and the flow
    //  calculation continues on the old partitions."
    out.new_load = out.old_load;
  }
  PLUM_LOG_INFO("load balancer: imbalance "
                << out.old_load.imbalance << " -> "
                << out.new_load.imbalance << ", moved "
                << out.decision.cost.elements_moved << " elements, "
                << (out.accepted ? "accepted" : "rejected"));
  return out;
}

}  // namespace plum::balance
