// Diffusion load balancer — the *local-view* baseline.
//
// The paper positions its contribution against diffusion-style methods
// from its related work ("Various methods on dynamic load balancing
// have been reported to date [3,4,6,7,9,10]; however, most of them lack
// a global view of loads across processors"): Cybenko's first-order
// diffusion [3] and Horton's multilevel diffusion [9] exchange load
// only between neighbouring processors, a little at a time.
//
// This implementation realizes first-order diffusion on the processor
// graph induced by the dual mesh: each sweep computes pairwise flows
// alpha*(load_p - load_q) along processor-graph edges and satisfies
// them by moving boundary dual vertices (preferring vertices with the
// most neighbours already on the destination, so parts stay compact).
// It is used by tests and benches as the ablation baseline for PLUM's
// repartition+remap pipeline: diffusion converges slowly on localized
// imbalance and moves load through intermediate processors, paying
// extra data movement — exactly the weakness the paper's global method
// removes.
#pragma once

#include <cstdint>
#include <vector>

#include "balance/cost_model.hpp"
#include "dualgraph/dual_graph.hpp"

namespace plum::balance {

struct DiffusionConfig {
  /// Diffusion coefficient per processor-graph edge (Cybenko's alpha);
  /// 0.5 is the stable choice for a pairwise exchange.
  double alpha = 0.5;
  /// Stop when W_max/W_avg falls below this.
  double imbalance_tolerance = 1.05;
  int max_sweeps = 200;
};

struct DiffusionOutcome {
  std::vector<Rank> proc_of_vertex;
  LoadInfo old_load;
  LoadInfo new_load;
  /// Total W_remap of vertices whose final placement differs from the
  /// initial one — net moves, counted once per vertex exactly like
  /// RepartOutcome, so the baselines compare like for like.  (Relays
  /// through intermediate processors still cost diffusion extra
  /// *sweeps*; they no longer inflate the movement totals.)
  std::int64_t weight_moved = 0;
  std::int64_t vertices_moved = 0;
  int sweeps = 0;
};

/// Runs diffusion sweeps until balanced or out of budget.
DiffusionOutcome run_diffusion_balancer(const dual::DualGraph& g,
                                        const std::vector<Rank>& current,
                                        int nprocs,
                                        const DiffusionConfig& cfg = {});

}  // namespace plum::balance
