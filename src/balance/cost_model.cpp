#include "balance/cost_model.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace plum::balance {

LoadInfo summarize_loads(const std::vector<std::int64_t>& per_proc) {
  LoadInfo info;
  for (const auto w : per_proc) {
    info.wmax = std::max(info.wmax, w);
    info.wtotal += w;
  }
  if (!per_proc.empty()) {
    info.wavg = static_cast<double>(info.wtotal) /
                static_cast<double>(per_proc.size());
  }
  info.imbalance =
      info.wavg > 0 ? static_cast<double>(info.wmax) / info.wavg : 1.0;
  return info;
}

LoadInfo compute_load(const std::vector<Rank>& proc_of_vertex,
                      const std::vector<std::int64_t>& wcomp, int nprocs) {
  PLUM_CHECK(proc_of_vertex.size() == wcomp.size());
  std::vector<std::int64_t> load(static_cast<std::size_t>(nprocs), 0);
  for (std::size_t v = 0; v < wcomp.size(); ++v) {
    const Rank p = proc_of_vertex[v];
    PLUM_CHECK(p >= 0 && p < nprocs);
    load[static_cast<std::size_t>(p)] += wcomp[v];
  }
  return summarize_loads(load);
}

LoadInfo compute_load_after(const std::vector<PartId>& new_part,
                            const std::vector<Rank>& proc_of_part,
                            const std::vector<std::int64_t>& wcomp,
                            int nprocs) {
  PLUM_CHECK(new_part.size() == wcomp.size());
  std::vector<std::int64_t> load(static_cast<std::size_t>(nprocs), 0);
  for (std::size_t v = 0; v < wcomp.size(); ++v) {
    const PartId j = new_part[v];
    PLUM_CHECK(j >= 0 &&
               static_cast<std::size_t>(j) < proc_of_part.size());
    const Rank p = proc_of_part[static_cast<std::size_t>(j)];
    PLUM_CHECK(p >= 0 && p < nprocs);
    load[static_cast<std::size_t>(p)] += wcomp[v];
  }
  return summarize_loads(load);
}

RemapCost remap_cost(const SimilarityMatrix& s, const Assignment& a,
                     const CostParams& p) {
  RemapCost c;
  c.elements_moved = s.total() - a.objective;
  PLUM_CHECK(c.elements_moved >= 0);
  // N: distinct (source processor, destination processor) pairs with
  // data in flight.  Partitions mapped to the same destination merge
  // into one set (Fig. 7).
  for (int i = 0; i < s.nprocs(); ++i) {
    std::vector<std::int64_t> to_dest(static_cast<std::size_t>(s.nprocs()),
                                      0);
    for (int j = 0; j < s.ncols(); ++j) {
      const Rank dest = a.proc_of_part[static_cast<std::size_t>(j)];
      if (dest != i) to_dest[static_cast<std::size_t>(dest)] += s.at(i, j);
    }
    for (const auto w : to_dest) c.message_sets += (w > 0) ? 1 : 0;
  }
  c.cost_us = static_cast<double>(c.elements_moved) * p.m_words * p.t_lat_us +
              static_cast<double>(c.message_sets) * p.t_setup_us;
  return c;
}

GainDecision evaluate_remap_decision(std::int64_t wmax_old,
                                     std::int64_t wmax_new,
                                     const RemapCost& cost,
                                     const CostParams& p) {
  GainDecision d;
  d.wmax_old = wmax_old;
  d.wmax_new = wmax_new;
  d.cost = cost;
  d.gain_us = p.t_iter_us * p.n_adapt *
              static_cast<double>(wmax_old - wmax_new);
  d.accept = d.gain_us > cost.cost_us;
  return d;
}

}  // namespace plum::balance
