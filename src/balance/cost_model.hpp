// Preliminary evaluation (§6) and cost calculation (§8).
//
// Imbalance: "If W_max is the sum of the wcomp on the most heavily-
// loaded processor, and W_avg is the average load across all processors,
// the average idle time for each processor is (W_max - W_avg). ... The
// mesh is repartitioned if the imbalance factor W_max/W_avg is greater
// than a specified threshold."
//
// Gain: "the total computational gain for the new partitioning is
// T_iter * N_adapt * (W_max_old - W_max_new)".
//
// Cost: "the total communication overhead for mapping new partitions to
// processors is C*M*T_lat + N*T_setup", where C = (sum S_ij - objective)
// is the number of elements moved, N the number of element sets moved,
// M the words of storage per element.  "The new partitioning and mapping
// are accepted if the computational gain is larger than the
// redistribution cost."
#pragma once

#include <cstdint>
#include <vector>

#include "balance/remapper.hpp"
#include "balance/similarity.hpp"

namespace plum::balance {

/// Load distribution summary over processors.
struct LoadInfo {
  std::int64_t wmax = 0;
  std::int64_t wtotal = 0;
  double wavg = 0.0;
  /// W_max / W_avg — the paper's imbalance factor.
  double imbalance = 1.0;
};

/// Summarizes per-processor loads into a LoadInfo.  Shared by the cost
/// model and both balancer baselines.  Hardened against degenerate
/// input: an empty vector or all-zero loads yield wavg = 0 and
/// imbalance = 1.0 (a trivially balanced nothing), never NaN.
LoadInfo summarize_loads(const std::vector<std::int64_t>& per_proc);

/// Projects per-vertex W_comp onto processors.
LoadInfo compute_load(const std::vector<Rank>& proc_of_vertex,
                      const std::vector<std::int64_t>& wcomp, int nprocs);

/// Load of an assignment: partition weights mapped through proc_of_part.
LoadInfo compute_load_after(const std::vector<PartId>& new_part,
                            const std::vector<Rank>& proc_of_part,
                            const std::vector<std::int64_t>& wcomp,
                            int nprocs);

struct CostParams {
  /// T_iter: solver seconds-equivalent per element per iteration (µs).
  double t_iter_us = 35.0;
  /// N_adapt: solver iterations expected before the next adaption.
  int n_adapt = 50;
  /// T_lat: per-word remote-copy time (µs).
  double t_lat_us = 0.1;
  /// T_setup: per-message-set setup time (µs).
  double t_setup_us = 40.0;
  /// M: words of storage per element (solution + geometry + lists).
  int m_words = 48;
};

struct RemapCost {
  /// C — elements to be moved (total W_remap minus the objective).
  std::int64_t elements_moved = 0;
  /// N — sets of elements moved (distinct source->destination pairs;
  /// cf. Fig. 7's note that partitions mapped to the same destination
  /// count once).
  std::int64_t message_sets = 0;
  /// C*M*T_lat + N*T_setup.
  double cost_us = 0.0;
};

/// Redistribution cost of an assignment (Fig. 7's computation).
RemapCost remap_cost(const SimilarityMatrix& s, const Assignment& a,
                     const CostParams& p);

/// Bytes the modeled redistribution would ship: C elements times M
/// words of storage each, at 8 bytes per word (the word size T_lat is
/// calibrated against).  The timeline pairs this prediction with the
/// bytes migration actually moved.
inline std::int64_t predicted_migration_bytes(const RemapCost& c,
                                              const CostParams& p) {
  return c.elements_moved * static_cast<std::int64_t>(p.m_words) * 8;
}

struct GainDecision {
  std::int64_t wmax_old = 0;
  std::int64_t wmax_new = 0;
  double gain_us = 0.0;
  RemapCost cost;
  bool accept = false;
};

/// The accept test: T_iter*N_adapt*(Wmax_old - Wmax_new) > cost.
GainDecision evaluate_remap_decision(std::int64_t wmax_old,
                                     std::int64_t wmax_new,
                                     const RemapCost& cost,
                                     const CostParams& p);

}  // namespace plum::balance
