// Similarity matrix (§7).
//
// "The first step toward processor reassignment is to compute a
//  similarity measure S that indicates how the remapping weights W_remap
//  of the new partitions are distributed over the processors.  It is
//  represented as a matrix of P rows and P×F columns, where P is the
//  number of processors.  Each entry S_ij is the sum of the W_remap of
//  all the dual graph vertices that are common between processor i and
//  new partition j.  Therefore, the sum of the entries in row i is the
//  total remapping weight of all the dual graph vertices currently
//  residing on processor i."
#pragma once

#include <cstdint>
#include <vector>

#include "support/check.hpp"
#include "support/types.hpp"

namespace plum::balance {

class SimilarityMatrix {
 public:
  SimilarityMatrix() = default;
  SimilarityMatrix(int nprocs, int factor)
      : p_(nprocs),
        f_(factor),
        s_(static_cast<std::size_t>(nprocs) *
               static_cast<std::size_t>(nprocs) *
               static_cast<std::size_t>(factor),
           0) {
    PLUM_CHECK(nprocs >= 1 && factor >= 1);
  }

  /// Builds S from the current placement and the new partitioning:
  /// current_proc[v] = processor currently owning dual vertex v,
  /// new_part[v]     = its new partition, wremap[v] = its W_remap.
  static SimilarityMatrix build(const std::vector<Rank>& current_proc,
                                const std::vector<PartId>& new_part,
                                const std::vector<std::int64_t>& wremap,
                                int nprocs, int factor);

  int nprocs() const { return p_; }
  int factor() const { return f_; }
  int ncols() const { return p_ * f_; }

  std::int64_t at(int i, int j) const {
    PLUM_DCHECK(i >= 0 && i < p_ && j >= 0 && j < ncols());
    return s_[static_cast<std::size_t>(i) *
                  static_cast<std::size_t>(ncols()) +
              static_cast<std::size_t>(j)];
  }
  std::int64_t& at(int i, int j) {
    PLUM_DCHECK(i >= 0 && i < p_ && j >= 0 && j < ncols());
    return s_[static_cast<std::size_t>(i) *
                  static_cast<std::size_t>(ncols()) +
              static_cast<std::size_t>(j)];
  }

  /// Total W_remap currently on processor i.
  std::int64_t row_sum(int i) const;
  /// Total W_remap of new partition j.
  std::int64_t col_sum(int j) const;
  /// Total W_remap over all dual vertices.
  std::int64_t total() const;

 private:
  int p_ = 0;
  int f_ = 1;
  std::vector<std::int64_t> s_;
};

}  // namespace plum::balance
