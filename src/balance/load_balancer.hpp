// The global load-balancing pipeline of Fig. 1's right-hand column:
//
//   preliminary evaluation -> repartitioning -> processor reassignment
//   -> cost calculation -> accept/reject.
//
// Operates entirely on the dual graph (vertex = initial-mesh element),
// which is small and whose "complexity and connectivity remains
// unchanged during the course of an adaptive computation", so the whole
// pipeline is deterministic given (weights, current placement).  The
// distributed driver runs it replicated on every rank after an
// allgather of the updated weights — every rank computes the identical
// outcome, which stands in for the paper's (unspecified) serialization
// of this global step.
#pragma once

#include <string>

#include "balance/cost_model.hpp"
#include "balance/remapper.hpp"
#include "balance/repart.hpp"
#include "partition/partitioner.hpp"

namespace plum::balance {

struct LoadBalancerConfig {
  /// Repartition when W_max/W_avg exceeds this (§6's threshold).
  double imbalance_threshold = 1.10;
  /// F: partitions per processor (§7).
  int factor = 1;
  std::string partitioner = "multilevel";
  std::string remapper = "heuristic";
  /// Randomization seed for stochastic remappers ("random").  0 keeps
  /// the historical deterministic stream (golden baselines); the
  /// framework mixes its cycle counter in so repeated cycles actually
  /// draw fresh permutations.  Must be identical on every rank — the
  /// pipeline runs replicated.
  std::uint64_t seed = 0;
  CostParams cost;
  /// If false, skip the gain-vs-cost test and always accept a
  /// repartitioning (used by benches isolating other components).
  bool use_cost_decision = true;
  /// With partitioner "hilbert" (or "auto" resolving to it): seed the
  /// splitter solve from the previous accepted splitters when the
  /// caller supplies state, instead of solving from scratch.
  bool sfc_incremental = true;
  /// Per-splitter slack band of the incremental update.  Keep this
  /// below imbalance_threshold, or the update would be a no-op
  /// whenever the balancer triggers at all.
  double sfc_tolerance = 1.05;
};

/// Resolves the configured partitioner name for a concrete run:
/// "auto" picks "hilbert" once nparts = P*F reaches 16 (where the
/// histogram solve decisively beats the multilevel pipeline) and
/// "mlspectral" below; any other name passes through unchanged.
std::string resolve_partitioner(const std::string& name, int nparts);

struct BalanceOutcome {
  /// Whether the preliminary evaluation triggered repartitioning.
  bool repartitioned = false;
  /// Whether the new mapping was accepted (gain > cost).
  bool accepted = false;
  /// Concrete partitioner the run used ("auto" resolved); empty when
  /// the preliminary evaluation skipped repartitioning.
  std::string partitioner_used;
  /// SFC panel — meaningful only when partitioner_used == "hilbert".
  SfcRepartOutcome sfc;
  LoadInfo old_load;
  LoadInfo new_load;
  partition::PartitionResult partition;  ///< k = P*F parts (if repartitioned)
  Assignment assignment;                 ///< partition -> processor
  GainDecision decision;
  /// Final placement per dual vertex: the new mapping if accepted,
  /// otherwise the old placement.
  std::vector<Rank> proc_of_vertex;
};

/// Runs the full pipeline for `nprocs` processors given the dual graph
/// (with refreshed weights) and the current placement of dual vertices.
/// `sfc_state`, when non-null and cfg.sfc_incremental, seeds the
/// hilbert splitter solve and is updated in place iff the new mapping
/// is accepted (a rejected plan leaves the old partition — and thus
/// the old splitters — live).  Replicated callers must pass
/// identically-evolving state on every rank.
BalanceOutcome run_load_balancer(const dual::DualGraph& g,
                                 const std::vector<Rank>& current,
                                 int nprocs, const LoadBalancerConfig& cfg,
                                 SfcRepartState* sfc_state = nullptr);

}  // namespace plum::balance
