// Processor reassignment (§8).
//
// Given the similarity matrix, assign each new partition to a processor
// — exactly F partitions per processor — maximizing the objective
//
//     F(assignment) = sum_j S[proc_of(j)][j]
//
// (equivalently minimizing the data moved, C = total(S) - F).  Four
// strategies are provided:
//
//   "heuristic" — the paper's greedy mark-and-map algorithm; the paper
//                 proves its data-movement cost is at most twice optimal
//                 and measures it within 3% of optimal at 1% of the cost.
//   "optimal"   — maximally weighted bipartite matching via the
//                 Hungarian algorithm on the F-duplicated processor set
//                 ("the processor reassignment problem can be reduced to
//                 the maximally weighted bipartite graph problem by
//                 duplicating each processor and all of its incident
//                 edges F times").
//   "identity"  — partition j stays on processor j % P (what you get
//                 with no reassignment step at all; ablation baseline).
//   "random"    — a random feasible assignment (worst-case baseline).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "balance/similarity.hpp"

namespace plum::balance {

struct Assignment {
  /// proc_of_part[j] = processor assigned to new partition j; every
  /// processor appears exactly F times.
  std::vector<Rank> proc_of_part;
  /// Objective value sum_j S[proc_of_part[j]][j].
  std::int64_t objective = 0;
};

/// Validates feasibility (each processor exactly F partitions) and
/// recomputes the objective.
Assignment finalize_assignment(const SimilarityMatrix& s,
                               std::vector<Rank> proc_of_part);

class Remapper {
 public:
  virtual ~Remapper() = default;
  virtual std::string name() const = 0;
  virtual Assignment assign(const SimilarityMatrix& s) = 0;
};

/// `seed` only affects the "random" remapper: 0 (the default) keeps the
/// historical ncols-derived stream so existing goldens stay bit-exact;
/// any other value is mixed into the stream so repeated draws at the
/// same ncols produce different permutations.
std::unique_ptr<Remapper> make_remapper(const std::string& name,
                                        std::uint64_t seed = 0);
std::vector<std::string> remapper_names();

/// The paper's greedy mark-and-map heuristic (exposed directly for the
/// benches that compare it with the optimal mapper).
Assignment heuristic_assign(const SimilarityMatrix& s);

/// Hungarian-algorithm optimal assignment.
Assignment optimal_assign(const SimilarityMatrix& s);

/// O(n^3) Hungarian algorithm: returns, for each row of the square cost
/// matrix, the column assigned to it so total cost is minimal.  Exposed
/// for unit testing against brute force.
std::vector<int> hungarian_min(
    const std::vector<std::vector<std::int64_t>>& cost);

}  // namespace plum::balance
