#include "balance/similarity.hpp"

namespace plum::balance {

SimilarityMatrix SimilarityMatrix::build(
    const std::vector<Rank>& current_proc,
    const std::vector<PartId>& new_part,
    const std::vector<std::int64_t>& wremap, int nprocs, int factor) {
  PLUM_CHECK(current_proc.size() == new_part.size());
  PLUM_CHECK(current_proc.size() == wremap.size());
  SimilarityMatrix s(nprocs, factor);
  for (std::size_t v = 0; v < current_proc.size(); ++v) {
    const Rank i = current_proc[v];
    const PartId j = new_part[v];
    PLUM_CHECK_MSG(i >= 0 && i < nprocs, "dual vertex " << v
                                             << " on invalid proc " << i);
    PLUM_CHECK_MSG(j >= 0 && j < s.ncols(),
                   "dual vertex " << v << " in invalid partition " << j);
    s.at(i, j) += wremap[v];
  }
  return s;
}

std::int64_t SimilarityMatrix::row_sum(int i) const {
  std::int64_t t = 0;
  for (int j = 0; j < ncols(); ++j) t += at(i, j);
  return t;
}

std::int64_t SimilarityMatrix::col_sum(int j) const {
  std::int64_t t = 0;
  for (int i = 0; i < p_; ++i) t += at(i, j);
  return t;
}

std::int64_t SimilarityMatrix::total() const {
  std::int64_t t = 0;
  for (const auto v : s_) t += v;
  return t;
}

}  // namespace plum::balance
