#include "balance/remapper.hpp"

#include <algorithm>
#include <limits>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace plum::balance {

Assignment finalize_assignment(const SimilarityMatrix& s,
                               std::vector<Rank> proc_of_part) {
  PLUM_CHECK(static_cast<int>(proc_of_part.size()) == s.ncols());
  std::vector<int> count(static_cast<std::size_t>(s.nprocs()), 0);
  Assignment a;
  a.objective = 0;
  for (int j = 0; j < s.ncols(); ++j) {
    const Rank i = proc_of_part[static_cast<std::size_t>(j)];
    PLUM_CHECK_MSG(i >= 0 && i < s.nprocs(),
                   "partition " << j << " assigned to invalid proc " << i);
    count[static_cast<std::size_t>(i)] += 1;
    a.objective += s.at(i, j);
  }
  for (int i = 0; i < s.nprocs(); ++i) {
    PLUM_CHECK_MSG(count[static_cast<std::size_t>(i)] == s.factor(),
                   "processor " << i << " assigned "
                                << count[static_cast<std::size_t>(i)]
                                << " partitions, expected " << s.factor());
  }
  a.proc_of_part = std::move(proc_of_part);
  return a;
}

Assignment heuristic_assign(const SimilarityMatrix& s) {
  const int P = s.nprocs();
  const int cols = s.ncols();
  // Direct transcription of the paper's pseudocode: an initialization
  // step, then repeated mark / map iterations.
  std::vector<Rank> partition_map(static_cast<std::size_t>(cols), kNoRank);
  std::vector<int> total_unmapped(static_cast<std::size_t>(P), s.factor());

  int unassigned = cols;
  // marked[i * cols + j] — entry S_ij marked in this iteration.
  std::vector<char> marked(static_cast<std::size_t>(P) *
                           static_cast<std::size_t>(cols));
  while (unassigned > 0) {
    std::fill(marked.begin(), marked.end(), 0);

    // Mark: each processor that still needs partitions marks its
    // largest entries among the unassigned partitions.
    for (int i = 0; i < P; ++i) {
      const int need = total_unmapped[static_cast<std::size_t>(i)];
      if (need == 0) continue;
      // Select the `need` largest unassigned entries of row i
      // (deterministic tie-break: smaller column first).
      std::vector<int> cand;
      cand.reserve(static_cast<std::size_t>(cols));
      for (int j = 0; j < cols; ++j) {
        if (partition_map[static_cast<std::size_t>(j)] == kNoRank) {
          cand.push_back(j);
        }
      }
      const auto take =
          std::min<std::size_t>(static_cast<std::size_t>(need), cand.size());
      std::partial_sort(cand.begin(),
                        cand.begin() + static_cast<std::ptrdiff_t>(take),
                        cand.end(), [&](int a, int b) {
                          if (s.at(i, a) != s.at(i, b)) {
                            return s.at(i, a) > s.at(i, b);
                          }
                          return a < b;
                        });
      for (std::size_t k = 0; k < take; ++k) {
        marked[static_cast<std::size_t>(i) *
                   static_cast<std::size_t>(cols) +
               static_cast<std::size_t>(cand[k])] = 1;
      }
    }

    // Map: every unassigned partition with a marked entry goes to the
    // processor holding its largest marked entry.
    bool progressed = false;
    for (int j = 0; j < cols; ++j) {
      if (partition_map[static_cast<std::size_t>(j)] != kNoRank) continue;
      Rank best_i = kNoRank;
      std::int64_t best_v = -1;
      for (int i = 0; i < P; ++i) {
        if (!marked[static_cast<std::size_t>(i) *
                        static_cast<std::size_t>(cols) +
                    static_cast<std::size_t>(j)]) {
          continue;
        }
        if (s.at(i, j) > best_v ||
            (s.at(i, j) == best_v && i < best_i)) {
          best_v = s.at(i, j);
          best_i = i;
        }
      }
      if (best_i == kNoRank) continue;
      // A processor can win at most as many columns as it marked, which
      // equals its remaining quota, so this never over-assigns.
      total_unmapped[static_cast<std::size_t>(best_i)] -= 1;
      PLUM_DCHECK(total_unmapped[static_cast<std::size_t>(best_i)] >= 0);
      partition_map[static_cast<std::size_t>(j)] = best_i;
      --unassigned;
      progressed = true;
    }
    PLUM_CHECK_MSG(progressed, "heuristic mapper made no progress");
  }
  return finalize_assignment(s, std::move(partition_map));
}

std::vector<int> hungarian_min(
    const std::vector<std::vector<std::int64_t>>& cost) {
  // Potentials ("e-maxx") formulation, O(n^3), 1-based internals.
  const int n = static_cast<int>(cost.size());
  PLUM_CHECK(n >= 1);
  for (const auto& row : cost) {
    PLUM_CHECK(static_cast<int>(row.size()) == n);
  }
  const std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;
  std::vector<std::int64_t> u(static_cast<std::size_t>(n) + 1, 0);
  std::vector<std::int64_t> v(static_cast<std::size_t>(n) + 1, 0);
  std::vector<int> p(static_cast<std::size_t>(n) + 1, 0);    // col -> row
  std::vector<int> way(static_cast<std::size_t>(n) + 1, 0);  // col -> prev col

  for (int i = 1; i <= n; ++i) {
    p[0] = i;
    int j0 = 0;
    std::vector<std::int64_t> minv(static_cast<std::size_t>(n) + 1, kInf);
    std::vector<char> used(static_cast<std::size_t>(n) + 1, 0);
    do {
      used[static_cast<std::size_t>(j0)] = 1;
      const int i0 = p[static_cast<std::size_t>(j0)];
      std::int64_t delta = kInf;
      int j1 = 0;
      for (int j = 1; j <= n; ++j) {
        if (used[static_cast<std::size_t>(j)]) continue;
        const std::int64_t cur =
            cost[static_cast<std::size_t>(i0 - 1)]
                [static_cast<std::size_t>(j - 1)] -
            u[static_cast<std::size_t>(i0)] - v[static_cast<std::size_t>(j)];
        if (cur < minv[static_cast<std::size_t>(j)]) {
          minv[static_cast<std::size_t>(j)] = cur;
          way[static_cast<std::size_t>(j)] = j0;
        }
        if (minv[static_cast<std::size_t>(j)] < delta) {
          delta = minv[static_cast<std::size_t>(j)];
          j1 = j;
        }
      }
      for (int j = 0; j <= n; ++j) {
        if (used[static_cast<std::size_t>(j)]) {
          u[static_cast<std::size_t>(p[static_cast<std::size_t>(j)])] +=
              delta;
          v[static_cast<std::size_t>(j)] -= delta;
        } else {
          minv[static_cast<std::size_t>(j)] -= delta;
        }
      }
      j0 = j1;
    } while (p[static_cast<std::size_t>(j0)] != 0);
    do {
      const int j1 = way[static_cast<std::size_t>(j0)];
      p[static_cast<std::size_t>(j0)] = p[static_cast<std::size_t>(j1)];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<int> col_of_row(static_cast<std::size_t>(n), -1);
  for (int j = 1; j <= n; ++j) {
    col_of_row[static_cast<std::size_t>(p[static_cast<std::size_t>(j)] - 1)] =
        j - 1;
  }
  return col_of_row;
}

Assignment optimal_assign(const SimilarityMatrix& s) {
  const int P = s.nprocs();
  const int F = s.factor();
  const int n = P * F;
  // Row r = copy (r % F) of processor (r / F); column j = partition j.
  // Maximize sum S -> minimize (maxS - S).
  std::int64_t max_s = 0;
  for (int i = 0; i < P; ++i) {
    for (int j = 0; j < n; ++j) max_s = std::max(max_s, s.at(i, j));
  }
  std::vector<std::vector<std::int64_t>> cost(
      static_cast<std::size_t>(n),
      std::vector<std::int64_t>(static_cast<std::size_t>(n), 0));
  for (int r = 0; r < n; ++r) {
    const int i = r / F;
    for (int j = 0; j < n; ++j) {
      cost[static_cast<std::size_t>(r)][static_cast<std::size_t>(j)] =
          max_s - s.at(i, j);
    }
  }
  const std::vector<int> col_of_row = hungarian_min(cost);
  std::vector<Rank> proc_of_part(static_cast<std::size_t>(n), kNoRank);
  for (int r = 0; r < n; ++r) {
    proc_of_part[static_cast<std::size_t>(col_of_row[static_cast<std::size_t>(
        r)])] = r / F;
  }
  return finalize_assignment(s, std::move(proc_of_part));
}

namespace {

class HeuristicRemapper final : public Remapper {
 public:
  std::string name() const override { return "heuristic"; }
  Assignment assign(const SimilarityMatrix& s) override {
    return heuristic_assign(s);
  }
};

class OptimalRemapper final : public Remapper {
 public:
  std::string name() const override { return "optimal"; }
  Assignment assign(const SimilarityMatrix& s) override {
    return optimal_assign(s);
  }
};

class IdentityRemapper final : public Remapper {
 public:
  std::string name() const override { return "identity"; }
  Assignment assign(const SimilarityMatrix& s) override {
    std::vector<Rank> proc(static_cast<std::size_t>(s.ncols()));
    for (int j = 0; j < s.ncols(); ++j) {
      proc[static_cast<std::size_t>(j)] = j % s.nprocs();
    }
    return finalize_assignment(s, std::move(proc));
  }
};

class RandomRemapper final : public Remapper {
 public:
  explicit RandomRemapper(std::uint64_t seed) : seed_(seed) {}
  std::string name() const override { return "random"; }
  Assignment assign(const SimilarityMatrix& s) override {
    std::vector<Rank> proc(static_cast<std::size_t>(s.ncols()));
    for (int j = 0; j < s.ncols(); ++j) {
      proc[static_cast<std::size_t>(j)] = j % s.nprocs();
    }
    // seed 0 reproduces the historical stream (golden baselines);
    // otherwise the caller's seed is mixed in so successive cycles
    // draw fresh permutations even at a fixed ncols.
    std::uint64_t base = 0xA551 + static_cast<std::uint64_t>(s.ncols());
    if (seed_ != 0) base = hash_combine64(base, seed_);
    Rng rng(base);
    rng.shuffle(proc);
    return finalize_assignment(s, std::move(proc));
  }

 private:
  std::uint64_t seed_;
};

}  // namespace

std::unique_ptr<Remapper> make_remapper(const std::string& name,
                                        std::uint64_t seed) {
  if (name == "heuristic") return std::make_unique<HeuristicRemapper>();
  if (name == "optimal") return std::make_unique<OptimalRemapper>();
  if (name == "identity") return std::make_unique<IdentityRemapper>();
  if (name == "random") return std::make_unique<RandomRemapper>(seed);
  PLUM_CHECK_MSG(false, "unknown remapper '" << name << "'");
  return nullptr;
}

std::vector<std::string> remapper_names() {
  return {"heuristic", "optimal", "identity", "random"};
}

}  // namespace plum::balance
