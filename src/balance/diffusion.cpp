#include "balance/diffusion.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "support/check.hpp"

namespace plum::balance {

namespace {

std::vector<std::int64_t> proc_loads(const dual::DualGraph& g,
                                     const std::vector<Rank>& proc,
                                     int nprocs) {
  std::vector<std::int64_t> load(static_cast<std::size_t>(nprocs), 0);
  for (std::size_t v = 0; v < proc.size(); ++v) {
    load[static_cast<std::size_t>(proc[v])] += g.wcomp[v];
  }
  return load;
}

}  // namespace

DiffusionOutcome run_diffusion_balancer(const dual::DualGraph& g,
                                        const std::vector<Rank>& current,
                                        int nprocs,
                                        const DiffusionConfig& cfg) {
  PLUM_CHECK(static_cast<std::int64_t>(current.size()) == g.num_vertices());
  DiffusionOutcome out;
  out.proc_of_vertex = current;
  auto& proc = out.proc_of_vertex;
  std::vector<std::int64_t> load = proc_loads(g, proc, nprocs);
  out.old_load = summarize_loads(load);

  // Track originals so relayed vertices count their movement once (a
  // vertex pushed through a saturated neighbour changes processor every
  // sweep, but only its net displacement is data actually remapped).
  const std::vector<Rank> origin = current;

  for (int sweep = 0; sweep < cfg.max_sweeps; ++sweep) {
    if (summarize_loads(load).imbalance <= cfg.imbalance_tolerance) break;
    out.sweeps = sweep + 1;

    // Processor graph of this placement: pairs with a crossing dual
    // edge.  (Load can only flow where mesh boundary exists.)
    std::set<std::pair<Rank, Rank>> pedges;
    for (std::size_t v = 0; v < proc.size(); ++v) {
      for (const auto nb : g.adjacency[v]) {
        const Rank a = proc[v];
        const Rank b = proc[static_cast<std::size_t>(nb)];
        if (a != b) pedges.insert({std::min(a, b), std::max(a, b)});
      }
    }

    bool moved_any = false;
    for (const auto& [p, q] : pedges) {
      // First-order diffusion flow (positive: p -> q).
      const double raw =
          cfg.alpha * 0.5 *
          static_cast<double>(load[static_cast<std::size_t>(p)] -
                              load[static_cast<std::size_t>(q)]);
      const Rank src = raw >= 0 ? p : q;
      const Rank dst = raw >= 0 ? q : p;
      auto budget = static_cast<std::int64_t>(std::abs(raw));
      if (budget <= 0) continue;

      // Boundary vertices of src adjacent to dst, most-connected first
      // (keeps the moving front compact).
      std::vector<std::pair<int, std::int32_t>> boundary;
      for (std::size_t v = 0; v < proc.size(); ++v) {
        if (proc[v] != src) continue;
        int links = 0;
        for (const auto nb : g.adjacency[v]) {
          links += (proc[static_cast<std::size_t>(nb)] == dst) ? 1 : 0;
        }
        if (links > 0) {
          boundary.emplace_back(-links, static_cast<std::int32_t>(v));
        }
      }
      std::sort(boundary.begin(), boundary.end());
      for (const auto& [neg_links, v] : boundary) {
        (void)neg_links;
        const std::int64_t w = g.wcomp[static_cast<std::size_t>(v)];
        if (w > budget) continue;
        proc[static_cast<std::size_t>(v)] = dst;
        load[static_cast<std::size_t>(src)] -= w;
        load[static_cast<std::size_t>(dst)] += w;
        budget -= w;
        moved_any = true;
        if (budget <= 0) break;
      }
    }
    if (!moved_any) break;  // stuck (no movable boundary fits the flow)
  }

  for (std::size_t v = 0; v < proc.size(); ++v) {
    if (proc[v] != origin[v]) {
      out.weight_moved += g.wremap[v];
      out.vertices_moved += 1;
    }
  }
  out.new_load = summarize_loads(load);
  return out;
}

}  // namespace plum::balance
