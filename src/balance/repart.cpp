#include "balance/repart.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace plum::balance {

RepartOutcome run_repartitioner(const dual::DualGraph& g,
                                const std::vector<Rank>& current,
                                int nprocs, const RepartConfig& cfg) {
  PLUM_CHECK(static_cast<std::int64_t>(current.size()) == g.num_vertices());
  RepartOutcome out;
  out.proc_of_vertex = current;
  auto& proc = out.proc_of_vertex;

  std::vector<std::int64_t> load(static_cast<std::size_t>(nprocs), 0);
  for (std::size_t v = 0; v < proc.size(); ++v) {
    load[static_cast<std::size_t>(proc[v])] += g.wcomp[v];
  }
  out.old_load = summarize_loads(load);
  const double avg = out.old_load.wavg;
  const auto cap = static_cast<std::int64_t>(avg * cfg.imbalance_tolerance);

  // Track originals so relayed vertices count their movement once.
  const std::vector<Rank> origin = current;

  for (int sweep = 0; sweep < cfg.max_sweeps; ++sweep) {
    if (summarize_loads(load).imbalance <= cfg.imbalance_tolerance) break;
    out.sweeps = sweep + 1;

    // Candidate moves: boundary vertices of overloaded processors that
    // fit under an adjacent processor's cap.  Scored by cut gain
    // (edges-to-destination minus edges-to-source).
    struct Move {
      std::int64_t gain;
      std::int32_t vertex;
      Rank dst;
      bool operator<(const Move& o) const { return gain > o.gain; }
    };
    std::vector<Move> moves;
    for (std::size_t v = 0; v < proc.size(); ++v) {
      const Rank src = proc[v];
      if (load[static_cast<std::size_t>(src)] <= cap) continue;
      // Count adjacency per neighbouring processor.  A dual-graph
      // vertex is a tetrahedron, so its degree is at most four: a tiny
      // linear-scanned array beats any map here.
      std::int64_t to_src = 0;
      std::pair<Rank, std::int64_t> to_dst[4];
      std::size_t ndst = 0;
      for (const auto nb : g.adjacency[v]) {
        const Rank p = proc[static_cast<std::size_t>(nb)];
        if (p == src) {
          ++to_src;
          continue;
        }
        std::size_t k = 0;
        while (k < ndst && to_dst[k].first != p) ++k;
        if (k == ndst) {
          to_dst[ndst++] = {p, 0};
        }
        to_dst[k].second += 1;
      }
      for (std::size_t k = 0; k < ndst; ++k) {
        const auto [dst, links] = to_dst[k];
        // Accept a destination under the cap, or a strictly-less-loaded
        // one (a relay move: load must be able to flow through
        // saturated neighbours toward distant underloaded processors).
        const std::int64_t after_dst =
            load[static_cast<std::size_t>(dst)] + g.wcomp[v];
        if (after_dst > cap &&
            after_dst >= load[static_cast<std::size_t>(src)]) {
          continue;
        }
        moves.push_back(
            {links - to_src, static_cast<std::int32_t>(v), dst});
      }
    }
    std::sort(moves.begin(), moves.end());

    bool moved_any = false;
    std::vector<char> touched(proc.size(), 0);
    for (const auto& mv : moves) {
      const auto v = static_cast<std::size_t>(mv.vertex);
      if (touched[v]) continue;
      const Rank src = proc[v];
      if (load[static_cast<std::size_t>(src)] <= cap) continue;
      const std::int64_t after_dst =
          load[static_cast<std::size_t>(mv.dst)] + g.wcomp[v];
      if (after_dst > cap &&
          after_dst >= load[static_cast<std::size_t>(src)]) {
        continue;
      }
      proc[v] = mv.dst;
      load[static_cast<std::size_t>(src)] -= g.wcomp[v];
      load[static_cast<std::size_t>(mv.dst)] += g.wcomp[v];
      touched[v] = 1;
      moved_any = true;
    }
    if (!moved_any) break;
  }

  for (std::size_t v = 0; v < proc.size(); ++v) {
    if (proc[v] != origin[v]) {
      out.weight_moved += g.wremap[v];
      out.vertices_moved += 1;
    }
  }
  for (std::size_t v = 0; v < proc.size(); ++v) {
    for (const auto nb : g.adjacency[v]) {
      if (proc[static_cast<std::size_t>(nb)] != proc[v]) out.edgecut += 1;
    }
  }
  out.edgecut /= 2;
  out.new_load = summarize_loads(load);
  return out;
}

SfcRepartOutcome run_sfc_repartitioner(const dual::DualGraph& g, int nparts,
                                       const SfcRepartConfig& cfg,
                                       const SfcRepartState* prev) {
  PLUM_CHECK(nparts >= 1);
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  std::vector<std::uint64_t> local;
  if (g.sfc_key.size() != n) local = partition::compute_sfc_keys(g);
  const std::vector<std::uint64_t>& keys =
      g.sfc_key.size() == n ? g.sfc_key : local;

  SfcRepartOutcome out;
  const std::size_t nspl = static_cast<std::size_t>(nparts - 1);
  const bool seeded = prev != nullptr && prev->nparts == nparts &&
                      prev->splitters.size() == nspl && nparts > 1;
  if (!seeded) {
    out.splitters = partition::select_splitters(keys, g.wcomp, nparts);
    out.splitters_updated = static_cast<int>(out.splitters.size());
    out.part = partition::parts_from_splitters(keys, out.splitters);
    return out;
  }
  out.incremental = true;

  const std::vector<std::int64_t> pw =
      partition::splitter_part_weights(keys, g.wcomp, prev->splitters);
  std::int64_t total = 0;
  std::int64_t wmax = 0;
  for (const std::int64_t w : pw) {
    total += w;
    wmax = std::max(wmax, w);
  }
  const double wavg = static_cast<double>(total) / nparts;

  // Old splitters still within tolerance: keep the whole set.
  if (total > 0 &&
      static_cast<double>(wmax) <= cfg.imbalance_tolerance * wavg) {
    out.splitters = prev->splitters;
    out.splitters_kept = static_cast<int>(nspl);
    out.part = partition::parts_from_splitters(keys, out.splitters);
    return out;
  }

  // Selective update: splitter i's cumulative weight C_i should be
  // near the ideal G_i = floor(W*(i+1)/k).  Keep it (hysteresis) while
  // the deviation stays under half the tolerance band — exactness
  // would relabel elements at every splitter after every adaption —
  // and re-solve only the offenders.
  const double slack = (cfg.imbalance_tolerance - 1.0) * wavg * 0.5;
  std::vector<std::int64_t> cum(nspl);
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < nspl; ++i) {
    acc += pw[i];
    cum[i] = acc;
  }
  out.splitters = prev->splitters;
  std::vector<std::size_t> stale;
  std::vector<std::int64_t> targets;
  std::int64_t floor_target = 0;  // targets must stay non-decreasing
  for (std::size_t i = 0; i < nspl; ++i) {
    const std::int64_t ideal =
        total * static_cast<std::int64_t>(i + 1) / nparts;
    if (std::abs(static_cast<double>(cum[i] - ideal)) <= slack) {
      floor_target = std::max(floor_target, cum[i]);
      continue;
    }
    stale.push_back(i);
    targets.push_back(std::clamp<std::int64_t>(
        std::max(ideal, floor_target + 1), 1, total));
    floor_target = targets.back();
  }
  const std::vector<partition::SfcSplitter> solved =
      partition::solve_splitter_targets(keys, g.wcomp, targets);
  for (std::size_t j = 0; j < stale.size(); ++j) {
    out.splitters[stale[j]] = solved[j];
  }
  out.splitters_kept = static_cast<int>(nspl - stale.size());
  out.splitters_updated = static_cast<int>(stale.size());

  // Pathology guard: a patched splitter can collide with a kept
  // neighbour (heavy vertex straddling both targets) and empty a part.
  // Fall back to a clean from-scratch solve in that case.
  out.part = partition::parts_from_splitters(keys, out.splitters);
  if (n >= static_cast<std::size_t>(nparts)) {
    std::vector<std::int64_t> count(static_cast<std::size_t>(nparts), 0);
    for (const PartId p : out.part) ++count[static_cast<std::size_t>(p)];
    for (const std::int64_t c : count) {
      if (c != 0) continue;
      out.splitters = partition::select_splitters(keys, g.wcomp, nparts);
      out.splitters_kept = 0;
      out.splitters_updated = static_cast<int>(out.splitters.size());
      out.part = partition::parts_from_splitters(keys, out.splitters);
      break;
    }
  }
  return out;
}

}  // namespace plum::balance
