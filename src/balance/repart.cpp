#include "balance/repart.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace plum::balance {

RepartOutcome run_repartitioner(const dual::DualGraph& g,
                                const std::vector<Rank>& current,
                                int nprocs, const RepartConfig& cfg) {
  PLUM_CHECK(static_cast<std::int64_t>(current.size()) == g.num_vertices());
  RepartOutcome out;
  out.proc_of_vertex = current;
  auto& proc = out.proc_of_vertex;

  std::vector<std::int64_t> load(static_cast<std::size_t>(nprocs), 0);
  for (std::size_t v = 0; v < proc.size(); ++v) {
    load[static_cast<std::size_t>(proc[v])] += g.wcomp[v];
  }
  out.old_load = summarize_loads(load);
  const double avg = out.old_load.wavg;
  const auto cap = static_cast<std::int64_t>(avg * cfg.imbalance_tolerance);

  // Track originals so relayed vertices count their movement once.
  const std::vector<Rank> origin = current;

  for (int sweep = 0; sweep < cfg.max_sweeps; ++sweep) {
    if (summarize_loads(load).imbalance <= cfg.imbalance_tolerance) break;
    out.sweeps = sweep + 1;

    // Candidate moves: boundary vertices of overloaded processors that
    // fit under an adjacent processor's cap.  Scored by cut gain
    // (edges-to-destination minus edges-to-source).
    struct Move {
      std::int64_t gain;
      std::int32_t vertex;
      Rank dst;
      bool operator<(const Move& o) const { return gain > o.gain; }
    };
    std::vector<Move> moves;
    for (std::size_t v = 0; v < proc.size(); ++v) {
      const Rank src = proc[v];
      if (load[static_cast<std::size_t>(src)] <= cap) continue;
      // Count adjacency per neighbouring processor.  A dual-graph
      // vertex is a tetrahedron, so its degree is at most four: a tiny
      // linear-scanned array beats any map here.
      std::int64_t to_src = 0;
      std::pair<Rank, std::int64_t> to_dst[4];
      std::size_t ndst = 0;
      for (const auto nb : g.adjacency[v]) {
        const Rank p = proc[static_cast<std::size_t>(nb)];
        if (p == src) {
          ++to_src;
          continue;
        }
        std::size_t k = 0;
        while (k < ndst && to_dst[k].first != p) ++k;
        if (k == ndst) {
          to_dst[ndst++] = {p, 0};
        }
        to_dst[k].second += 1;
      }
      for (std::size_t k = 0; k < ndst; ++k) {
        const auto [dst, links] = to_dst[k];
        // Accept a destination under the cap, or a strictly-less-loaded
        // one (a relay move: load must be able to flow through
        // saturated neighbours toward distant underloaded processors).
        const std::int64_t after_dst =
            load[static_cast<std::size_t>(dst)] + g.wcomp[v];
        if (after_dst > cap &&
            after_dst >= load[static_cast<std::size_t>(src)]) {
          continue;
        }
        moves.push_back(
            {links - to_src, static_cast<std::int32_t>(v), dst});
      }
    }
    std::sort(moves.begin(), moves.end());

    bool moved_any = false;
    std::vector<char> touched(proc.size(), 0);
    for (const auto& mv : moves) {
      const auto v = static_cast<std::size_t>(mv.vertex);
      if (touched[v]) continue;
      const Rank src = proc[v];
      if (load[static_cast<std::size_t>(src)] <= cap) continue;
      const std::int64_t after_dst =
          load[static_cast<std::size_t>(mv.dst)] + g.wcomp[v];
      if (after_dst > cap &&
          after_dst >= load[static_cast<std::size_t>(src)]) {
        continue;
      }
      proc[v] = mv.dst;
      load[static_cast<std::size_t>(src)] -= g.wcomp[v];
      load[static_cast<std::size_t>(mv.dst)] += g.wcomp[v];
      touched[v] = 1;
      moved_any = true;
    }
    if (!moved_any) break;
  }

  for (std::size_t v = 0; v < proc.size(); ++v) {
    if (proc[v] != origin[v]) {
      out.weight_moved += g.wremap[v];
      out.vertices_moved += 1;
    }
  }
  for (std::size_t v = 0; v < proc.size(); ++v) {
    for (const auto nb : g.adjacency[v]) {
      if (proc[static_cast<std::size_t>(nb)] != proc[v]) out.edgecut += 1;
    }
  }
  out.edgecut /= 2;
  out.new_load = summarize_loads(load);
  return out;
}

}  // namespace plum::balance
