// Movement-minimizing k-way repartitioner — the *incremental* baseline.
//
// PLUM repartitions from scratch and then minimizes movement after the
// fact (similarity matrix + remapper).  The alternative the follow-on
// literature explored (ParMETIS' adaptive repartitioning, Zoltan's
// hierarchical methods) is to never leave the current placement: treat
// the existing partition as the starting point and migrate only what
// balance requires, choosing among candidates by edge-cut damage.
//
// run_repartitioner() implements that: greedy sweeps move boundary
// vertices from overloaded to underloaded processors, best cut-gain
// first, until the imbalance tolerance is met.  The paper defers
// repartitioning research to future work ("mesh repartitioning ... will
// be the focus in subsequent work"); this provides the comparison point
// its framework benches against (bench_baseline).
#pragma once

#include <cstdint>
#include <vector>

#include "balance/cost_model.hpp"
#include "dualgraph/dual_graph.hpp"

namespace plum::balance {

struct RepartConfig {
  double imbalance_tolerance = 1.05;
  int max_sweeps = 60;
};

struct RepartOutcome {
  std::vector<Rank> proc_of_vertex;
  LoadInfo old_load;
  LoadInfo new_load;
  /// Total W_remap of vertices whose processor changed.
  std::int64_t weight_moved = 0;
  std::int64_t vertices_moved = 0;
  /// Dual edge cut of the final placement.
  std::int64_t edgecut = 0;
  int sweeps = 0;
};

RepartOutcome run_repartitioner(const dual::DualGraph& g,
                                const std::vector<Rank>& current,
                                int nprocs, const RepartConfig& cfg = {});

}  // namespace plum::balance
