// Movement-minimizing k-way repartitioner — the *incremental* baseline.
//
// PLUM repartitions from scratch and then minimizes movement after the
// fact (similarity matrix + remapper).  The alternative the follow-on
// literature explored (ParMETIS' adaptive repartitioning, Zoltan's
// hierarchical methods) is to never leave the current placement: treat
// the existing partition as the starting point and migrate only what
// balance requires, choosing among candidates by edge-cut damage.
//
// run_repartitioner() implements that: greedy sweeps move boundary
// vertices from overloaded to underloaded processors, best cut-gain
// first, until the imbalance tolerance is met.  The paper defers
// repartitioning research to future work ("mesh repartitioning ... will
// be the focus in subsequent work"); this provides the comparison point
// its framework benches against (bench_baseline).
#pragma once

#include <cstdint>
#include <vector>

#include "balance/cost_model.hpp"
#include "dualgraph/dual_graph.hpp"
#include "partition/sfc.hpp"

namespace plum::balance {

struct RepartConfig {
  double imbalance_tolerance = 1.05;
  int max_sweeps = 60;
};

struct RepartOutcome {
  std::vector<Rank> proc_of_vertex;
  LoadInfo old_load;
  LoadInfo new_load;
  /// Total W_remap of vertices whose processor changed.
  std::int64_t weight_moved = 0;
  std::int64_t vertices_moved = 0;
  /// Dual edge cut of the final placement.
  std::int64_t edgecut = 0;
  int sweeps = 0;
};

RepartOutcome run_repartitioner(const dual::DualGraph& g,
                                const std::vector<Rank>& current,
                                int nprocs, const RepartConfig& cfg = {});

// ---------------------------------------------------------------------
// Incremental SFC repartitioning.
//
// Hilbert keys never change across adaption (they derive from the
// immutable initial-mesh centroids), so a partition is fully described
// by its k-1 curve splitters.  After adaption shifts the weights, the
// old splitters are still *nearly* right: re-solving from scratch would
// chase exact targets and move every splitter a little, relabelling
// elements everywhere.  Instead, keep every splitter whose cumulative
// weight is within a slack band of its ideal target and re-solve only
// the offenders — successive partitions stay similar, which is what
// shrinks elements_moved/ship_us, and the histogram solve itself gets
// cheaper (fewer splitters, narrower prefix sets).

struct SfcRepartConfig {
  /// Projected imbalance under the *old* splitters at or below which
  /// they are all kept unchanged (no re-solve at all).
  double imbalance_tolerance = 1.05;
};

/// Splitters of the last accepted hilbert partition; carried by the
/// framework across cycles.  Empty nparts (0) means "no prior state".
struct SfcRepartState {
  std::vector<partition::SfcSplitter> splitters;
  int nparts = 0;
};

struct SfcRepartOutcome {
  std::vector<partition::SfcSplitter> splitters;
  std::vector<PartId> part;
  /// Whether the solve was seeded from previous splitters.
  bool incremental = false;
  int splitters_kept = 0;
  int splitters_updated = 0;
};

/// Partitions g into nparts along the Hilbert curve.  With no previous
/// state (prev == nullptr or shape mismatch) this is a from-scratch
/// select_splitters(); with state, splitters within the slack band are
/// kept verbatim and only the rest are re-solved.  Uses g.sfc_key when
/// cached (see partition::ensure_sfc_keys), else computes keys locally.
SfcRepartOutcome run_sfc_repartitioner(const dual::DualGraph& g, int nparts,
                                       const SfcRepartConfig& cfg = {},
                                       const SfcRepartState* prev = nullptr);

}  // namespace plum::balance
