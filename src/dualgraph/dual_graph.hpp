// Dual graph of the initial computational mesh (§5).
//
// "The tetrahedral elements of the computational mesh are the vertices
//  of the dual graph.  An edge exists between two dual graph vertices if
//  the corresponding elements share a face."
//
// Each dual vertex carries the paper's two weights:
//
//   W_comp  — leaf elements in the root's refinement tree ("only those
//             elements that have no children participate in the flow
//             computation");
//   W_remap — total elements in the tree ("all descendants of the root
//             element must move with it from one partition to another").
//
// "The most significant advantage of using the dual of the initial
//  computational mesh is that its complexity and connectivity remains
//  unchanged during the course of an adaptive computation" — so the
//  graph is built once, and each adaption only refreshes the weights.
//
// Dual vertices are identified by the root element's *global id*; the
// generator assigns those densely (0..R-1), so they double as indices.
// Edge weights are uniform, as in the paper's test cases.
#pragma once

#include <cstdint>
#include <vector>

#include "mesh/geometry.hpp"
#include "mesh/mesh.hpp"

namespace plum::dual {

struct DualGraph {
  /// adjacency[v] = dual vertices sharing a face with v (sorted).
  std::vector<std::vector<std::int32_t>> adjacency;
  /// edge_weight[v][k] = communication weight of adjacency[v][k]
  /// ("every edge in the dual graph also has a weight that models the
  /// runtime communication").  Uniform (1) after build_dual_graph — "the
  /// edge weights are uniform for the test cases in this paper" — and
  /// refreshed to leaf-face counts by update_edge_weights().
  std::vector<std::vector<std::int64_t>> edge_weight;
  /// Computational weight per vertex (leaf count).
  std::vector<std::int64_t> wcomp;
  /// Remapping weight per vertex (total refinement-tree size).
  std::vector<std::int64_t> wremap;
  /// Root-element centroids (used by the geometric partitioners).
  std::vector<mesh::Vec3> centroid;
  /// Cached Hilbert curve key per vertex (see partition/sfc.hpp).
  /// Derived from the immutable centroids, so adaption never
  /// invalidates it; empty until partition::ensure_sfc_keys() runs.
  std::vector<std::uint64_t> sfc_key;

  /// Weight of the dual edge (v, adjacency[v][k]).
  std::int64_t weight_of(std::size_t v, std::size_t k) const {
    return edge_weight.empty() ? 1 : edge_weight[v][k];
  }

  std::int64_t num_vertices() const {
    return static_cast<std::int64_t>(adjacency.size());
  }
  std::int64_t num_edges() const;  ///< undirected edge count
  std::int64_t total_wcomp() const;
  std::int64_t total_wremap() const;
};

/// Builds the dual of an initial (un-adapted) mesh.  Requires element
/// gids to be dense 0..R-1 (as the generator assigns).
DualGraph build_dual_graph(const mesh::Mesh& initial);

/// Refreshes W_comp / W_remap from an adapted mesh whose root elements
/// are those of `initial` ("new grids obtained by adaption are
/// translated to the two weights ... for every element in the initial
/// mesh").  Works on the serial (whole) mesh; the parallel layer merges
/// per-rank contributions instead.
void update_weights(DualGraph& g, const mesh::Mesh& adapted);

/// Refreshes the communication (edge) weights from an adapted mesh:
/// the weight of dual edge (a, b) becomes the number of *leaf* faces
/// currently shared between the trees of roots a and b — the actual
/// per-iteration halo volume a solver would exchange across that
/// interface.  (The paper keeps these uniform in its experiments but
/// includes them in the model; this realizes the model.)
void update_edge_weights(DualGraph& g, const mesh::Mesh& adapted);

/// Result of agglomerating dual vertices into superelements — the
/// paper's escape hatch "for extremely large initial meshes ...
/// agglomerating groups of elements into larger superelements".
struct Agglomeration {
  /// fine vertex -> coarse vertex.
  std::vector<std::int32_t> coarse_of;
  DualGraph coarse;
};

/// Greedy BFS clustering into groups of ~`group_size` fine vertices.
/// Weights are summed; coarse adjacency is the quotient graph.
Agglomeration agglomerate(const DualGraph& g, int group_size);

/// Expands a partition of the coarse graph back to the fine graph.
std::vector<PartId> expand_partition(const Agglomeration& a,
                                     const std::vector<PartId>& coarse_part);

}  // namespace plum::dual
