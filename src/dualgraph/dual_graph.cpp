#include "dualgraph/dual_graph.hpp"

#include <algorithm>
#include <deque>
#include <map>

#include "mesh/tet_topology.hpp"
#include "support/check.hpp"
#include "support/flat_hash.hpp"

namespace plum::dual {

using mesh::Mesh;

std::int64_t DualGraph::num_edges() const {
  std::int64_t deg = 0;
  for (const auto& a : adjacency) deg += static_cast<std::int64_t>(a.size());
  return deg / 2;
}

std::int64_t DualGraph::total_wcomp() const {
  std::int64_t s = 0;
  for (const auto w : wcomp) s += w;
  return s;
}

std::int64_t DualGraph::total_wremap() const {
  std::int64_t s = 0;
  for (const auto w : wremap) s += w;
  return s;
}

DualGraph build_dual_graph(const Mesh& initial) {
  const auto n = initial.num_active_elements();
  DualGraph g;
  g.adjacency.assign(static_cast<std::size_t>(n), {});
  g.wcomp.assign(static_cast<std::size_t>(n), 1);
  g.wremap.assign(static_cast<std::size_t>(n), 1);
  g.centroid.assign(static_cast<std::size_t>(n), {});

  // Face -> owning elements; adjacency where a face is shared by two.
  // Key: sorted vertex triple packed exactly into 64 bits.
  FlatMap<std::uint64_t, std::int32_t> first_owner;
  first_owner.reserve(static_cast<std::size_t>(n) * 4);
  for (std::size_t li = 0; li < initial.elements().size(); ++li) {
    const mesh::Element& el = initial.elements()[li];
    if (!el.alive || !el.active) continue;
    PLUM_CHECK_MSG(el.parent == kNoIndex && el.gid < static_cast<GlobalId>(n),
                   "build_dual_graph requires an un-adapted mesh with dense "
                   "generator gids");
    const auto me = static_cast<std::int32_t>(el.gid);
    g.centroid[static_cast<std::size_t>(me)] =
        initial.element_centroid(static_cast<LocalIndex>(li));
    for (int f = 0; f < 4; ++f) {
      std::array<LocalIndex, 3> fv = {
          el.v[static_cast<std::size_t>(mesh::kFaceVerts[f][0])],
          el.v[static_cast<std::size_t>(mesh::kFaceVerts[f][1])],
          el.v[static_cast<std::size_t>(mesh::kFaceVerts[f][2])]};
      std::sort(fv.begin(), fv.end());
      PLUM_DCHECK(fv[2] < (1 << 21));
      const std::uint64_t key = (static_cast<std::uint64_t>(fv[0]) << 42) |
                                (static_cast<std::uint64_t>(fv[1]) << 21) |
                                static_cast<std::uint64_t>(fv[2]);
      auto [it, inserted] = first_owner.try_emplace(key, me);
      if (!inserted) {
        const std::int32_t other = it->second;
        PLUM_CHECK_MSG(other != me, "element shares a face with itself");
        g.adjacency[static_cast<std::size_t>(me)].push_back(other);
        g.adjacency[static_cast<std::size_t>(other)].push_back(me);
      }
    }
  }
  for (auto& a : g.adjacency) std::sort(a.begin(), a.end());
  // "The edge weights are uniform for the test cases in this paper."
  g.edge_weight.resize(g.adjacency.size());
  for (std::size_t v = 0; v < g.adjacency.size(); ++v) {
    g.edge_weight[v].assign(g.adjacency[v].size(), 1);
  }
  return g;
}

void update_edge_weights(DualGraph& g, const Mesh& adapted) {
  // Count leaf faces shared between each pair of adjacent roots: walk
  // every active element's faces; a face seen from two different roots
  // contributes one unit of halo traffic to that dual edge.
  FlatMap<std::uint64_t, std::int64_t> pair_count;
  FlatMap<std::uint64_t, std::int32_t> first_root;
  first_root.reserve(adapted.elements().size() * 2);
  for (std::size_t li = 0; li < adapted.elements().size(); ++li) {
    const mesh::Element& el = adapted.elements()[li];
    if (!el.alive || !el.active) continue;
    const auto root_gid =
        static_cast<std::int32_t>(adapted.element(el.root).gid);
    for (int f = 0; f < 4; ++f) {
      std::array<LocalIndex, 3> fv = {
          el.v[static_cast<std::size_t>(mesh::kFaceVerts[f][0])],
          el.v[static_cast<std::size_t>(mesh::kFaceVerts[f][1])],
          el.v[static_cast<std::size_t>(mesh::kFaceVerts[f][2])]};
      std::sort(fv.begin(), fv.end());
      PLUM_DCHECK(fv[2] < (1 << 21));
      const std::uint64_t key = (static_cast<std::uint64_t>(fv[0]) << 42) |
                                (static_cast<std::uint64_t>(fv[1]) << 21) |
                                static_cast<std::uint64_t>(fv[2]);
      auto [it, inserted] = first_root.try_emplace(key, root_gid);
      if (!inserted && it->second != root_gid) {
        const auto a = static_cast<std::uint32_t>(
            std::min(it->second, root_gid));
        const auto b = static_cast<std::uint32_t>(
            std::max(it->second, root_gid));
        pair_count[(static_cast<std::uint64_t>(a) << 32) | b] += 1;
      }
    }
  }
  g.edge_weight.assign(g.adjacency.size(), {});
  for (std::size_t v = 0; v < g.adjacency.size(); ++v) {
    g.edge_weight[v].assign(g.adjacency[v].size(), 0);
    for (std::size_t k = 0; k < g.adjacency[v].size(); ++k) {
      const auto nb = static_cast<std::uint32_t>(g.adjacency[v][k]);
      const auto a = std::min(static_cast<std::uint32_t>(v), nb);
      const auto b = std::max(static_cast<std::uint32_t>(v), nb);
      const auto it =
          pair_count.find((static_cast<std::uint64_t>(a) << 32) | b);
      // Adjacent roots always share at least their original face, but
      // coarse/fine interfaces of the *initial* mesh keep weight >= 1.
      g.edge_weight[v][k] = it == pair_count.end() ? 1 : it->second;
    }
  }
}

void update_weights(DualGraph& g, const Mesh& adapted) {
  std::vector<std::int64_t> leaves, total;
  adapted.root_weights(&leaves, &total);
  std::fill(g.wcomp.begin(), g.wcomp.end(), 0);
  std::fill(g.wremap.begin(), g.wremap.end(), 0);
  for (std::size_t li = 0; li < adapted.elements().size(); ++li) {
    const mesh::Element& el = adapted.elements()[li];
    if (!el.alive || el.parent != kNoIndex) continue;  // roots only
    const auto dv = static_cast<std::size_t>(el.gid);
    PLUM_CHECK_MSG(dv < g.wcomp.size(),
                   "adapted mesh root gid outside dual graph");
    g.wcomp[dv] = leaves[li];
    g.wremap[dv] = total[li];
  }
}

Agglomeration agglomerate(const DualGraph& g, int group_size) {
  PLUM_CHECK(group_size >= 1);
  const auto n = static_cast<std::size_t>(g.num_vertices());
  Agglomeration out;
  out.coarse_of.assign(n, -1);

  // Greedy BFS: grow clusters of `group_size` vertices, preferring
  // unassigned neighbours (keeps superelements connected and compact).
  std::int32_t next_coarse = 0;
  std::deque<std::int32_t> frontier;
  for (std::size_t seed = 0; seed < n; ++seed) {
    if (out.coarse_of[seed] != -1) continue;
    const std::int32_t cid = next_coarse++;
    int members = 0;
    frontier.clear();
    frontier.push_back(static_cast<std::int32_t>(seed));
    while (!frontier.empty() && members < group_size) {
      const std::int32_t v = frontier.front();
      frontier.pop_front();
      if (out.coarse_of[static_cast<std::size_t>(v)] != -1) continue;
      out.coarse_of[static_cast<std::size_t>(v)] = cid;
      ++members;
      for (const std::int32_t nb : g.adjacency[static_cast<std::size_t>(v)]) {
        if (out.coarse_of[static_cast<std::size_t>(nb)] == -1) {
          frontier.push_back(nb);
        }
      }
    }
  }

  // Quotient graph (crossing edge weights accumulate).
  const auto nc = static_cast<std::size_t>(next_coarse);
  out.coarse.adjacency.assign(nc, {});
  out.coarse.wcomp.assign(nc, 0);
  out.coarse.wremap.assign(nc, 0);
  out.coarse.centroid.assign(nc, {});
  std::vector<std::int64_t> count(nc, 0);
  std::vector<std::map<std::int32_t, std::int64_t>> cross(nc);
  for (std::size_t v = 0; v < n; ++v) {
    const auto c = static_cast<std::size_t>(out.coarse_of[v]);
    out.coarse.wcomp[c] += g.wcomp[v];
    out.coarse.wremap[c] += g.wremap[v];
    out.coarse.centroid[c] += g.centroid[v];
    count[c] += 1;
    for (std::size_t k = 0; k < g.adjacency[v].size(); ++k) {
      const std::int32_t nb = g.adjacency[v][k];
      const std::int32_t cn = out.coarse_of[static_cast<std::size_t>(nb)];
      if (cn != out.coarse_of[v]) {
        cross[c][cn] += g.weight_of(v, k);
      }
    }
  }
  for (std::size_t c = 0; c < nc; ++c) {
    out.coarse.adjacency[c].reserve(cross[c].size());
    out.coarse.edge_weight.resize(nc);
    for (const auto& [cn, w] : cross[c]) {
      out.coarse.adjacency[c].push_back(cn);
      out.coarse.edge_weight[c].push_back(w);
    }
    out.coarse.centroid[c] =
        out.coarse.centroid[c] * (1.0 / static_cast<double>(count[c]));
  }
  return out;
}

std::vector<PartId> expand_partition(const Agglomeration& a,
                                     const std::vector<PartId>& coarse_part) {
  std::vector<PartId> fine(a.coarse_of.size(), kNoPart);
  for (std::size_t v = 0; v < a.coarse_of.size(); ++v) {
    fine[v] = coarse_part[static_cast<std::size_t>(a.coarse_of[v])];
  }
  return fine;
}

}  // namespace plum::dual
