// Table 1: "Progression of grid sizes through refinement and
// coarsening" for the Local_1 / Local_2 / Random edge-marking
// strategies.
//
// The paper's rotor mesh starts at 60,968 elements / 78,343 edges; our
// substitute box mesh starts at 63,888 / 78,958 (n=22).  Absolute
// counts differ slightly; what must reproduce is the progression shape:
// Local_1 refines ~5% of edges and coarsening fully restores the
// initial mesh; Local_2/Random roughly triple the mesh on refinement,
// and coarsening removes most (but not all) of the growth.
#include <cstdio>

#include "common.hpp"

using namespace plum;
using plumbench::BenchConfig;

namespace {

struct Row {
  const char* stage;
  std::int64_t paper_elems[3];
  std::int64_t paper_edges[3];
};

// The paper's Table 1 values (Local_1, Local_2, Random).
constexpr Row kPaper[3] = {
    {"Initial Mesh", {60968, 60968, 60968}, {78343, 78343, 78343}},
    {"After Refinement", {82259, 201543, 201734}, {104178, 246112, 246949}},
    {"After Coarsening", {60968, 100241, 100537}, {78343, 125651, 126448}},
};

}  // namespace

int main(int argc, char** argv) {
  const BenchConfig cfg = plumbench::parse_args(argc, argv);
  const mesh::Mesh initial = plumbench::paper_mesh(cfg);
  const auto strategies = plumbench::paper_strategies(initial, cfg.seed);

  std::int64_t elems[3][3], edges[3][3];  // [stage][strategy]
  for (std::size_t s = 0; s < strategies.size(); ++s) {
    mesh::Mesh m = initial;
    elems[0][s] = m.num_active_elements();
    edges[0][s] = m.num_active_edges();
    strategies[s].apply_refine(m);
    adapt::refine_marked(m);
    elems[1][s] = m.num_active_elements();
    edges[1][s] = m.num_active_edges();
    strategies[s].apply_coarsen(m);
    adapt::coarsen_and_refine(m);
    elems[2][s] = m.num_active_elements();
    edges[2][s] = m.num_active_edges();
  }

  Table t("Table 1 — Progression of grid sizes through refinement and "
          "coarsening (measured | paper)");
  t.header({"Stage", "L1 elems", "L1 edges", "L2 elems", "L2 edges",
            "Rnd elems", "Rnd edges"});
  for (int stage = 0; stage < 3; ++stage) {
    std::vector<Table::Cell> row{std::string(kPaper[stage].stage)};
    for (int s = 0; s < 3; ++s) {
      row.emplace_back(std::to_string(elems[stage][s]) + " | " +
                       std::to_string(kPaper[stage].paper_elems[s]));
      row.emplace_back(std::to_string(edges[stage][s]) + " | " +
                       std::to_string(kPaper[stage].paper_edges[s]));
    }
    t.row(row);
  }
  plumbench::print_table(t, cfg);

  // Shape checks the paper's narrative implies.
  const bool l1_restored = elems[2][0] == elems[0][0];
  const double l2_growth =
      static_cast<double>(elems[1][1]) / static_cast<double>(elems[0][1]);
  const double rnd_vs_l2 =
      static_cast<double>(elems[1][2]) / static_cast<double>(elems[1][1]);
  std::printf("shape: Local_1 coarsening restores initial mesh: %s "
              "(paper: yes)\n",
              l1_restored ? "yes" : "NO");
  std::printf("shape: Local_2 refinement growth %.2fx (paper: 3.31x)\n",
              l2_growth);
  std::printf("shape: Random/Local_2 refined-size ratio %.3f (paper: "
              "1.001 — 'approximately equal')\n",
              rnd_vs_l2);
  return 0;
}
