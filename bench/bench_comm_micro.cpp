// Communication-path micro-benchmark (wall-clock, not simulated time).
//
// Times the three hot paths this repo's staging/hashing layer serves:
//   * exchange_round   — one neighbour-exchange round staging every
//                        shared-edge gid to its SPL ranks (the shape of
//                        the Fig.-3 mark-propagation inner loop);
//   * migrate_full     — one full tree migration after a localized
//                        refinement (pack, alltoallv, unpack, SPL
//                        rendezvous);
//   * dualgraph_build  — the serial face-keyed dual-graph construction;
//   * partition_solve  — one from-cold partitioner solve per algorithm
//                        (mlspectral pipeline vs. hilbert SFC histogram
//                        splitting), the repartitioning cost every rank
//                        pays redundantly each balance cycle.
//
// `--scale` is the P=64 smoke configuration (n=10, P=64, fewer
// exchange rounds): the same measurements at oversubscription scale —
// the fiber-pool machine runs 64 ranks on however many cores exist —
// plus a `dist_gen_startup` record comparing distributed slab
// generation (parallel/dist_gen.hpp, summed over ranks) against the
// replicated global-mesh scatter it replaces.  Every run ends with a
// `run_footprint` record carrying the process peak RSS so CI can put
// an absolute memory ceiling on the scale run via
// `bench_gate --max-field run_footprint.peak_rss_mb=...`.
//
// Results go to BENCH_comm.json (override with --out PATH) so runs can
// be diffed; see EXPERIMENTS.md "Communication micro-benchmark".
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common.hpp"
#include "dualgraph/dual_graph.hpp"
#include "mesh/box_mesh.hpp"
#include "parallel/dist_gen.hpp"
#include "parallel/dist_mesh.hpp"
#include "parallel/exchange.hpp"
#include "parallel/migrate.hpp"
#include "parallel/parallel_adapt.hpp"
#include "parallel/rank_buffers.hpp"
#include "simmpi/machine.hpp"
#include "support/rng.hpp"

namespace {

using namespace plumbench;
using plum::Bytes;
using plum::GlobalId;
using plum::Rank;
using plum::mesh::EdgeMark;
using plum::mesh::Mesh;

/// Refine-marks every edge whose midpoint falls inside the solution
/// bump; purely geometric, so marks agree across shared copies.
void mark_bump_edges(Mesh& m) {
  const plum::mesh::Vec3 c{0.35, 0.35, 0.35};
  for (auto& e : m.edges()) {
    if (!e.alive || e.bisected()) continue;
    const plum::mesh::Vec3 mid =
        (m.vertex(e.v[0]).pos + m.vertex(e.v[1]).pos) * 0.5;
    if (plum::mesh::dot(mid - c, mid - c) < 0.35 * 0.35) {
      e.mark = EdgeMark::kRefine;
    }
  }
}

struct PhaseTimes {
  double exchange_round_us = 0.0;
  std::int64_t exchange_bytes = 0;
  double migrate_us = 0.0;
  std::int64_t elements_moved = 0;
  // Per-phase migration breakdown (max over ranks, wall-clock).
  double pack_us = 0.0;
  double ship_us = 0.0;
  double delete_purge_us = 0.0;
  double unpack_us = 0.0;
  double spl_us = 0.0;
  // Simulated-clock overlap gauges for the same (synchronous) migration:
  // Σ max-over-ranks per-phase span — the denominator of overlap_ratio.
  double sim_phase_sum_us = 0.0;
};

PhaseTimes run_parallel_phases(const Mesh& global,
                               const std::vector<Rank>& placement,
                               int nprocs, int exchange_rounds) {
  PhaseTimes out;
  plum::simmpi::Machine machine;
  machine.run(nprocs, [&](plum::simmpi::Comm& comm) {
    plum::parallel::DistMesh dm = plum::parallel::build_local_mesh(
        global, placement, comm.rank(), comm.size());

    // Grow the mesh so the halo is non-trivial.
    mark_bump_edges(dm.local);
    plum::parallel::ParallelAdaptor adaptor(&dm, &comm);
    adaptor.refine();

    // --- exchange rounds -------------------------------------------------
    plum::parallel::NeighborExchange ex(comm, dm.neighbors());
    plum::parallel::RankBuffers rb(comm.size());
    std::int64_t checksum = 0;
    std::int64_t halo_bytes = 0;
    comm.barrier();
    const WallTimer t_ex;
    for (int round = 0; round < exchange_rounds; ++round) {
      for (const auto& e : dm.local.edges()) {
        if (!e.alive || e.spl.empty()) continue;
        for (const Rank r : e.spl) rb.at(r).put(e.gid);
      }
      const std::vector<Bytes> in = ex.exchange(rb);
      for (const Bytes& buf : in) {
        plum::BufReader r(buf);
        while (!r.exhausted()) {
          checksum += static_cast<std::int64_t>(r.get<GlobalId>() & 0xff);
        }
        halo_bytes += static_cast<std::int64_t>(buf.size());
      }
    }
    const double ex_us = t_ex.elapsed_us();
    comm.barrier();
    PLUM_CHECK(checksum >= 0);  // keep the reads alive
    const std::int64_t total_halo = comm.allreduce_sum(halo_bytes);

    // --- one full migration ----------------------------------------------
    // Deterministically reassign roughly half the roots one rank over;
    // the shift is a pure function of the gid, so all ranks agree.
    // This migration runs untraced, so its wall time stays comparable
    // across revisions (instrumentation must be free when off).
    std::vector<Rank> new_proc = placement;
    for (std::size_t gid = 0; gid < new_proc.size(); ++gid) {
      if (plum::mix64(gid) & 1) {
        new_proc[gid] = static_cast<Rank>((new_proc[gid] + 1) % nprocs);
      }
    }
    comm.barrier();
    plum::parallel::MigrateOptions sync_opt;
    sync_opt.pipeline = false;  // this is the synchronous baseline
    const WallTimer t_mig;
    const plum::parallel::MigrationResult mig =
        plum::parallel::migrate(&dm, &comm, new_proc, sync_opt);
    const double mig_us = t_mig.elapsed_us();
    comm.barrier();
    const std::int64_t total_moved = comm.allreduce_sum(mig.elements_sent);
    // Each phase is reduced separately: the critical rank can differ per
    // phase, and the synchronous wall is bounded by this sum.
    const double sim_phase_sum =
        comm.allreduce_max(mig.pack_us) + comm.allreduce_max(mig.ship_us) +
        comm.allreduce_max(mig.delete_purge_us) +
        comm.allreduce_max(mig.unpack_us) + comm.allreduce_max(mig.spl_us);

    // --- traced migration for the per-phase breakdown --------------------
    // A second, comparable migration (another gid-keyed half-shift) with
    // the phase tracer on; the breakdown is the tracer's host wall-clock
    // self time per sub-phase, reduced to the slowest rank.
    std::vector<Rank> back_proc = new_proc;
    for (std::size_t gid = 0; gid < back_proc.size(); ++gid) {
      if (plum::mix64(gid) & 2) {
        back_proc[gid] = static_cast<Rank>((back_proc[gid] + 1) % nprocs);
      }
    }
    comm.barrier();
    comm.tracer().set_enabled(true);
    plum::parallel::migrate(&dm, &comm, back_proc, sync_opt);
    const auto phase_real = [&](const char* sub) {
      const plum::obs::PhaseTotals* t = comm.tracer().find({"migrate", sub});
      return comm.allreduce_max(t != nullptr ? t->real_us : 0.0);
    };
    const double pack_us = phase_real("pack");
    const double ship_us = phase_real("ship");
    const double delete_purge_us = phase_real("delete_purge");
    const double unpack_us = phase_real("unpack");
    const double spl_us = phase_real("spl_repair");

    // Only rank 0 writes the shared result struct (threads race otherwise).
    if (comm.rank() == 0) {
      out.exchange_round_us = ex_us / exchange_rounds;
      out.exchange_bytes = total_halo;
      out.migrate_us = mig_us;
      out.elements_moved = total_moved;
      out.pack_us = pack_us;
      out.ship_us = ship_us;
      out.delete_purge_us = delete_purge_us;
      out.unpack_us = unpack_us;
      out.spl_us = spl_us;
      out.sim_phase_sum_us = sim_phase_sum;
    }
  });
  return out;
}

/// What the pipelined replay measured: the simulated migrate wall plus
/// the critical-path decomposition reconstructed from the flight
/// recorder (see parallel/critpath.hpp).
struct PipelinedResult {
  double wall_us = 0.0;
  /// 1.0 when the reconstructed path is contiguous, complete, and its
  /// span equals the migrate wall exactly (the reconciliation
  /// invariant); 0.0 otherwise.  Deterministic — gate it with
  /// `--min-field migrate_critpath.reconciled=1`.
  double reconciled = 0.0;
  double transfer_share = 0.0;  ///< critical-path transfer / wall
  double top_share = 0.0;       ///< dominant phase's share of wall
};

/// Replays the synchronous baseline's exact migration — same initial
/// placement, same bump refinement, same gid-keyed half-shift — on a
/// fresh machine with the pipelined path, and returns the simulated
/// migrate wall (max over ranks).  Identical traffic by construction,
/// so wall / PhaseTimes::sim_phase_sum_us is the overlap ratio.
PipelinedResult run_pipelined_migration(const Mesh& global,
                                        const std::vector<Rank>& placement,
                                        int nprocs) {
  PipelinedResult out;
  plum::simmpi::Machine machine;
  machine.run(nprocs, [&](plum::simmpi::Comm& comm) {
    plum::parallel::DistMesh dm = plum::parallel::build_local_mesh(
        global, placement, comm.rank(), comm.size());
    mark_bump_edges(dm.local);
    plum::parallel::ParallelAdaptor adaptor(&dm, &comm);
    adaptor.refine();
    std::vector<Rank> new_proc = placement;
    for (std::size_t gid = 0; gid < new_proc.size(); ++gid) {
      if (plum::mix64(gid) & 1) {
        new_proc[gid] = static_cast<Rank>((new_proc[gid] + 1) % nprocs);
      }
    }
    plum::parallel::MigrateOptions opt;
    opt.pipeline = true;
    opt.capture_flight = true;
    const plum::parallel::MigrationResult mig =
        plum::parallel::migrate(&dm, &comm, new_proc, opt);
    const double w = comm.allreduce_max(mig.elapsed_us);
    const std::vector<plum::parallel::FlightWindow> wins =
        plum::parallel::gather_windows(mig.flight_window, &comm, 0);
    if (comm.rank() == 0) {
      out.wall_us = w;
      const plum::parallel::CriticalPath cp =
          plum::parallel::analyze_critical_path(wins, comm.cost());
      if (cp.valid) {
        out.reconciled =
            (cp.complete && cp.contiguous() && cp.wall_us == w) ? 1.0 : 0.0;
        if (cp.wall_us > 0.0) {
          out.transfer_share = cp.transfer_us / cp.wall_us;
          for (const auto& ph : cp.phases) {
            if (ph.phase == cp.top_phase) {
              out.top_share = ph.total_us() / cp.wall_us;
            }
          }
        }
      }
    }
  });
  return out;
}

/// "8,12,16" -> {8, 12, 16}; exits on malformed input.
std::vector<int> parse_int_list(const char* flag, const std::string& s) {
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t next = s.find(',', pos);
    if (next == std::string::npos) next = s.size();
    const int v = std::atoi(s.substr(pos, next - pos).c_str());
    if (v <= 0) {
      std::fprintf(stderr, "%s: bad value in '%s'\n", flag, s.c_str());
      std::exit(2);
    }
    out.push_back(v);
    pos = next + 1;
  }
  if (out.empty()) {
    std::fprintf(stderr, "%s: empty list\n", flag);
    std::exit(2);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_comm.json";
  std::vector<int> sizes = {8, 12, 16};
  std::vector<int> procs = {2, 4, 8};
  int exchange_rounds = 50;
  bool scale = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (a == "--quick") {
      sizes = {6, 8};
      procs = {2, 4};
      exchange_rounds = 10;
    } else if (a == "--scale") {
      scale = true;
      sizes = {10};
      procs = {64};
      exchange_rounds = 10;
    } else if (a == "--sizes" && i + 1 < argc) {
      sizes = parse_int_list("--sizes", argv[++i]);
    } else if (a == "--procs" && i + 1 < argc) {
      procs = parse_int_list("--procs", argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--scale] [--out PATH] "
                   "[--sizes N,N,...] [--procs P,P,...]\n",
                   argv[0]);
      return 2;
    }
  }

  JsonEmitter json("comm_micro");
  plum::Table t("communication micro-benchmark (wall-clock)");
  t.header({"n", "P", "exch us/round", "halo bytes", "migrate us",
            "elems moved", "dualgraph us"});

  for (const int n : sizes) {
    const Mesh global = plum::mesh::make_cube_mesh(n);

    // Serial dual-graph build (face-keyed flat hash path).
    const WallTimer t_dg;
    const plum::dual::DualGraph g = plum::dual::build_dual_graph(global);
    const double dg_us = t_dg.elapsed_us();
    json.add("dualgraph_build",
             {{"n", static_cast<double>(n)},
              {"elements", static_cast<double>(g.num_vertices())},
              {"wall_us", dg_us}});

    for (const int P : procs) {
      // Serial from-cold partitioner solves at k=P parts.  `g` carries
      // no cached SFC keys here, so the hilbert timing includes the key
      // encoding — the true cost of a cold solve.
      for (const char* algo : {"mlspectral", "hilbert"}) {
        const WallTimer t_ps;
        const auto r =
            plum::partition::make_partitioner(algo)->partition(g, P);
        const double ps_us = t_ps.elapsed_us();
        PLUM_CHECK(r.imbalance >= 1.0);  // keep the solve alive
        json.add(std::string("partition_solve_") + algo,
                 {{"n", static_cast<double>(n)},
                  {"P", static_cast<double>(P)},
                  {"wall_us", ps_us},
                  {"edgecut", static_cast<double>(r.edgecut)},
                  {"imbalance", r.imbalance}});
      }

      const std::vector<Rank> placement = initial_placement(g, P);
      const PhaseTimes pt =
          run_parallel_phases(global, placement, P, exchange_rounds);
      // Simulated overlap: the same migration replayed pipelined.  The
      // ratio is wall / Σ(sync phases) — 1.0 means no overlap at all,
      // and max(phase)/Σ(phases) is the floor perfect overlap reaches.
      const PipelinedResult pipe =
          run_pipelined_migration(global, placement, P);
      const double pipe_wall_us = pipe.wall_us;
      const double overlap_ratio =
          pt.sim_phase_sum_us > 0.0 ? pipe_wall_us / pt.sim_phase_sum_us
                                    : 0.0;
      json.add("exchange_round",
               {{"n", static_cast<double>(n)},
                {"P", static_cast<double>(P)},
                {"rounds", static_cast<double>(exchange_rounds)},
                {"wall_us_per_round", pt.exchange_round_us},
                {"halo_bytes", static_cast<double>(pt.exchange_bytes)}});
      json.add("migrate_full",
               {{"n", static_cast<double>(n)},
                {"P", static_cast<double>(P)},
                {"wall_us", pt.migrate_us},
                {"elements_moved", static_cast<double>(pt.elements_moved)},
                {"pack_us", pt.pack_us},
                {"ship_us", pt.ship_us},
                {"delete_purge_us", pt.delete_purge_us},
                {"unpack_us", pt.unpack_us},
                {"spl_us", pt.spl_us},
                {"sync_phase_sum_us", pt.sim_phase_sum_us},
                {"migrate_wall_us", pipe_wall_us},
                {"overlap_ratio", overlap_ratio}});
      // Critical-path decomposition of the pipelined replay.  All four
      // fields are simulated-clock quantities, deterministic across
      // hosts; `reconciled` asserts the exact-reconciliation invariant
      // and is floored at 1 in CI.
      json.add("migrate_critpath",
               {{"n", static_cast<double>(n)},
                {"P", static_cast<double>(P)},
                {"reconciled", pipe.reconciled},
                {"transfer_share", pipe.transfer_share},
                {"top_share", pipe.top_share}});
      t.row({static_cast<long long>(n), static_cast<long long>(P),
             pt.exchange_round_us, static_cast<long long>(pt.exchange_bytes),
             pt.migrate_us, static_cast<long long>(pt.elements_moved),
             dg_us});

      if (scale) {
        // Startup comparison: every rank's slab built from the spec
        // alone vs. the replicated global mesh scattered per rank.
        // Summed over ranks — both paths run rank-serial here, and the
        // sum is what a single shared-memory host actually pays.
        plum::mesh::BoxMeshSpec spec;
        spec.nx = spec.ny = spec.nz = n;
        std::int64_t dist_objects = 0;
        const WallTimer t_dist;
        for (Rank r = 0; r < P; ++r) {
          const plum::parallel::DistMesh dm =
              plum::parallel::make_box_dist_mesh(spec, r, P);
          dist_objects += dm.local.num_active_elements();
        }
        const double dist_us = t_dist.elapsed_us();
        std::int64_t scatter_objects = 0;
        const WallTimer t_scatter;
        {
          const Mesh g2 = plum::mesh::make_box_mesh(spec);
          const std::vector<Rank> slab =
              plum::parallel::make_slab_partition(spec, P);
          for (Rank r = 0; r < P; ++r) {
            const plum::parallel::DistMesh dm =
                plum::parallel::build_local_mesh(g2, slab, r, P);
            scatter_objects += dm.local.num_active_elements();
          }
        }
        const double scatter_us = t_scatter.elapsed_us();
        PLUM_CHECK(dist_objects == scatter_objects);  // same mesh, by contract
        json.add("dist_gen_startup",
                 {{"n", static_cast<double>(n)},
                  {"P", static_cast<double>(P)},
                  {"dist_wall_us", dist_us},
                  {"scatter_wall_us", scatter_us}});
        std::printf("dist-gen startup n=%d P=%d: %.1f ms distributed vs "
                    "%.1f ms global scatter\n",
                    n, P, dist_us / 1000.0, scatter_us / 1000.0);
      }
    }
  }

  json.add("run_footprint", {{"peak_rss_mb", peak_rss_mb()}});
  t.print();
  std::printf("peak rss %.1f MB\n", peak_rss_mb());
  return json.write(out_path) ? 0 : 1;
}
