// Microbenchmark (google-benchmark): processor-reassignment mappers on
// random similarity matrices across (P, F).  Not a paper figure — this
// is the scaling ablation behind Fig. 10's wall-clock numbers, pushing
// P beyond the paper's 64 to check that the heuristic stays cheap.
#include <benchmark/benchmark.h>

#include "balance/remapper.hpp"
#include "support/rng.hpp"

namespace {

using plum::Rng;
using plum::balance::SimilarityMatrix;

SimilarityMatrix random_matrix(int P, int F, std::uint64_t seed) {
  Rng rng(seed);
  SimilarityMatrix s(P, F);
  for (int i = 0; i < P; ++i) {
    for (int j = 0; j < s.ncols(); ++j) {
      // Diagonal-heavy, like real post-adaption matrices.
      s.at(i, j) = static_cast<std::int64_t>(rng.next_below(500)) +
                   ((j / F == i) ? 4000 : 0);
    }
  }
  return s;
}

void BM_HeuristicMapper(benchmark::State& state) {
  const int P = static_cast<int>(state.range(0));
  const int F = static_cast<int>(state.range(1));
  const SimilarityMatrix s = random_matrix(P, F, 0xCAFE + P * 10 + F);
  for (auto _ : state) {
    benchmark::DoNotOptimize(plum::balance::heuristic_assign(s));
  }
  state.SetLabel("P=" + std::to_string(P) + " F=" + std::to_string(F));
}

void BM_OptimalMapper(benchmark::State& state) {
  const int P = static_cast<int>(state.range(0));
  const int F = static_cast<int>(state.range(1));
  const SimilarityMatrix s = random_matrix(P, F, 0xCAFE + P * 10 + F);
  for (auto _ : state) {
    benchmark::DoNotOptimize(plum::balance::optimal_assign(s));
  }
  state.SetLabel("P=" + std::to_string(P) + " F=" + std::to_string(F));
}

void MapperArgs(benchmark::internal::Benchmark* b) {
  for (const int P : {8, 16, 32, 64, 128, 256}) {
    for (const int F : {1, 2, 4}) {
      if (static_cast<long long>(P) * F <= 512) b->Args({P, F});
    }
  }
}

BENCHMARK(BM_HeuristicMapper)->Apply(MapperArgs)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_OptimalMapper)->Apply(MapperArgs)->Unit(benchmark::kMillisecond);

void BM_SimilarityBuild(benchmark::State& state) {
  const int P = static_cast<int>(state.range(0));
  const std::int64_t n = 64000;
  Rng rng(0xB17D);
  std::vector<plum::Rank> cur(static_cast<std::size_t>(n));
  std::vector<plum::PartId> part(static_cast<std::size_t>(n));
  std::vector<std::int64_t> wremap(static_cast<std::size_t>(n));
  for (std::size_t v = 0; v < cur.size(); ++v) {
    cur[v] = static_cast<plum::Rank>(rng.next_below(P));
    part[v] = static_cast<plum::PartId>(rng.next_below(P));
    wremap[v] = 1 + static_cast<std::int64_t>(rng.next_below(8));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SimilarityMatrix::build(cur, part, wremap, P, 1));
  }
  state.SetLabel("P=" + std::to_string(P) + " |V|=64000");
}

BENCHMARK(BM_SimilarityBuild)->Arg(16)->Arg(64)->Arg(256)->Unit(
    benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
