// Figure 12: "Comparison of flow solver execution times with and
// without load balancing" — the ratio T_unbalanced / T_balanced vs P
// for the three strategies, against the paper's analytic ceiling
// 8P/(P+7) (one isotropic refinement concentrated on one processor).
//
// Expected shapes: Local_1 shows the best improvement ("with 64
// processors, the improvement is almost sixfold"); Random only marginal
// ("the computational work is already distributed uniformly among the
// processors after the mesh is adapted").
#include <cstdio>

#include "common.hpp"
#include "parallel/framework.hpp"

using namespace plum;
using plumbench::BenchConfig;

namespace {

constexpr int kSolverIters = 5;

struct Ratio {
  double unbalanced_us = 0.0;
  double balanced_us = 0.0;
};

Ratio run_once(const mesh::Mesh& global, const dual::DualGraph& dualg,
               const adapt::Strategy& strategy, int P) {
  const auto proc = plumbench::initial_placement(dualg, P);
  std::vector<Ratio> per_rank(static_cast<std::size_t>(P));

  parallel::FrameworkConfig fcfg;
  fcfg.solver_iterations = 0;
  fcfg.balancer.partitioner = "rcb";
  fcfg.balancer.remapper = "heuristic";
  fcfg.balancer.use_cost_decision = false;
  fcfg.balancer.imbalance_threshold = 1.0;

  simmpi::Machine machine;
  machine.run(P, [&](simmpi::Comm& comm) {
    parallel::PlumFramework fw(&comm, global, dualg, proc, fcfg);
    fw.refine_with([&](mesh::Mesh& m) { strategy.apply_refine(m); });

    comm.barrier();
    const double t0 = comm.clock().now();
    fw.solve(kSolverIters);
    comm.barrier();
    const double t1 = comm.clock().now();

    fw.refresh_weights();
    const auto outcome = fw.balance_only();
    fw.migrate_to(outcome.proc_of_vertex);

    comm.barrier();
    const double t2 = comm.clock().now();
    fw.solve(kSolverIters);
    comm.barrier();
    const double t3 = comm.clock().now();

    auto& r = per_rank[static_cast<std::size_t>(comm.rank())];
    r.unbalanced_us = t1 - t0;
    r.balanced_us = t3 - t2;
  });

  Ratio out;
  for (const auto& r : per_rank) {
    out.unbalanced_us = std::max(out.unbalanced_us, r.unbalanced_us);
    out.balanced_us = std::max(out.balanced_us, r.balanced_us);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchConfig cfg = plumbench::parse_args(argc, argv);
  const mesh::Mesh global = plumbench::paper_mesh(cfg);
  const dual::DualGraph dualg = dual::build_dual_graph(global);
  const auto strategies = plumbench::paper_strategies(global, cfg.seed);

  Table t("Fig. 12 — solver time improvement from load balancing "
          "(T_unbalanced / T_balanced)");
  t.header({"P", "Local_1", "Local_2", "Random", "bound 8P/(P+7)"})
      .precision(2);
  std::vector<std::array<double, 3>> ratios;
  std::vector<int> used_procs;
  for (const int P : cfg.procs) {
    if (P < 2) continue;
    std::array<double, 3> row{};
    for (std::size_t s = 0; s < strategies.size(); ++s) {
      const Ratio r = run_once(global, dualg, strategies[s], P);
      row[s] = r.unbalanced_us / r.balanced_us;
      std::fprintf(stderr, "  [fig12] %s P=%d done\n",
                   strategies[s].name(), P);
    }
    ratios.push_back(row);
    used_procs.push_back(P);
    t.row({static_cast<long long>(P), row[0], row[1], row[2],
           8.0 * P / (P + 7.0)});
  }
  plumbench::print_table(t, cfg);

  const auto& last = ratios.back();
  std::printf("claim: Local_1 improvement @P=%d: %.2fx (paper @64: "
              "'almost sixfold')\n",
              used_procs.back(), last[0]);
  std::printf("shape: Local_1 best, Random marginal: %s (paper: yes)\n",
              (last[0] > last[1] && last[1] > last[2] && last[2] < 1.5)
                  ? "yes"
                  : "NO");
  return 0;
}
