// Figure 8: "Speedup of the parallel mesh adaption code during the
// (a) refinement and (b) coarsening stages" for Local_1 / Local_2 /
// Random, P = 1..64.
//
// Speedup is simulated-time speedup: T(1)/T(P) where T is the max over
// ranks of the adaption phase's virtual clock (compute charges + every
// message's setup/transfer/wait — see simmpi/cost_model.hpp).
//
// Expected shapes (paper §10): Random best ("35.5X speedup on 64
// processors"), Local_2 next ("reduced to about 25.0X ... refined in a
// single compact region"), Local_1 refinement worst ("a compact
// spherical region ... all of the work is thus performed by only a
// handful of processors"); Local_1 coarsening much better than its
// refinement.
#include <cstdio>

#include "common.hpp"
#include "parallel/parallel_adapt.hpp"

using namespace plum;
using plumbench::BenchConfig;

namespace {

struct PhaseTimes {
  double refine_us = 0.0;
  double coarsen_us = 0.0;
};

PhaseTimes run_once(const mesh::Mesh& global, const dual::DualGraph& dualg,
                    const adapt::Strategy& strategy, int P) {
  const auto proc = plumbench::initial_placement(dualg, P);
  std::vector<double> refine_us(static_cast<std::size_t>(P), 0.0);
  std::vector<double> coarsen_us(static_cast<std::size_t>(P), 0.0);

  simmpi::Machine machine;
  machine.run(P, [&](simmpi::Comm& comm) {
    parallel::DistMesh dm =
        parallel::build_local_mesh(global, proc, comm.rank(), comm.size());
    parallel::ParallelAdaptor adaptor(&dm, &comm);
    comm.barrier();

    const double t0 = comm.clock().now();
    strategy.apply_refine(dm.local);
    comm.charge(static_cast<double>(dm.local.num_active_edges()),
                comm.cost().c_mark_edge_us);
    adaptor.refine();
    comm.barrier();
    const double t1 = comm.clock().now();

    strategy.apply_coarsen(dm.local);
    comm.charge(static_cast<double>(dm.local.num_active_edges()),
                comm.cost().c_mark_edge_us);
    adaptor.coarsen();
    comm.barrier();
    const double t2 = comm.clock().now();

    refine_us[static_cast<std::size_t>(comm.rank())] = t1 - t0;
    coarsen_us[static_cast<std::size_t>(comm.rank())] = t2 - t1;
  });

  PhaseTimes out;
  for (int r = 0; r < P; ++r) {
    out.refine_us = std::max(out.refine_us, refine_us[static_cast<std::size_t>(r)]);
    out.coarsen_us =
        std::max(out.coarsen_us, coarsen_us[static_cast<std::size_t>(r)]);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchConfig cfg = plumbench::parse_args(argc, argv);
  const mesh::Mesh global = plumbench::paper_mesh(cfg);
  const dual::DualGraph dualg = dual::build_dual_graph(global);
  const auto strategies = plumbench::paper_strategies(global, cfg.seed);

  std::vector<std::vector<PhaseTimes>> times(strategies.size());
  for (std::size_t s = 0; s < strategies.size(); ++s) {
    for (const int P : cfg.procs) {
      times[s].push_back(run_once(global, dualg, strategies[s], P));
      std::fprintf(stderr, "  [fig8] %s P=%d done\n",
                   strategies[s].name(), P);
    }
  }

  for (int phase = 0; phase < 2; ++phase) {
    Table t(phase == 0
                ? "Fig. 8(a) — speedup of the refinement stage"
                : "Fig. 8(b) — speedup of the coarsening stage");
    t.header({"P", "Local_1", "Local_2", "Random"}).precision(1);
    for (std::size_t pi = 0; pi < cfg.procs.size(); ++pi) {
      std::vector<Table::Cell> row{
          static_cast<long long>(cfg.procs[pi])};
      for (std::size_t s = 0; s < strategies.size(); ++s) {
        const double t1 = phase == 0 ? times[s][0].refine_us
                                     : times[s][0].coarsen_us;
        const double tp = phase == 0 ? times[s][pi].refine_us
                                     : times[s][pi].coarsen_us;
        row.emplace_back(tp > 0 ? t1 / tp : 0.0);
      }
      t.row(row);
    }
    plumbench::print_table(t, cfg);
  }

  // Headline-claim checks at the largest P.
  const std::size_t last = cfg.procs.size() - 1;
  const auto speedup = [&](std::size_t s) {
    return times[s][0].refine_us / times[s][last].refine_us;
  };
  std::printf("claim: Random refinement speedup @P=%d: %.1fx "
              "(paper @64: 35.5x)\n",
              cfg.procs[last], speedup(2));
  std::printf("claim: Local_2 refinement speedup @P=%d: %.1fx "
              "(paper @64: ~25.0x)\n",
              cfg.procs[last], speedup(1));
  std::printf("shape: Local_1 refinement is the worst of the three: %s\n",
              (speedup(0) < speedup(1) && speedup(0) < speedup(2))
                  ? "yes"
                  : "NO");
  const double l1_coarsen =
      times[0][0].coarsen_us / times[0][last].coarsen_us;
  std::printf("shape: Local_1 coarsening beats Local_1 refinement "
              "(%.1fx vs %.1fx): %s\n",
              l1_coarsen, speedup(0), l1_coarsen > speedup(0) ? "yes" : "NO");
  return 0;
}
