// Baseline ablation (beyond the paper's figures): PLUM's global
// repartition-and-remap pipeline vs the two families of alternatives —
// first-order diffusion (the related-work methods the paper says "lack
// a global view") and incremental movement-minimizing repartitioning
// (the ParMETIS-style follow-on).  Reported per strategy at the largest
// P: final imbalance, W_remap moved, and dual edge cut (the solver's
// future communication volume).
#include <cstdio>

#include "balance/diffusion.hpp"
#include "balance/load_balancer.hpp"
#include "balance/repart.hpp"
#include "common.hpp"

using namespace plum;
using plumbench::BenchConfig;

namespace {

std::int64_t cut_of(const dual::DualGraph& g,
                    const std::vector<Rank>& proc) {
  std::int64_t cut = 0;
  for (std::size_t v = 0; v < proc.size(); ++v) {
    for (const auto nb : g.adjacency[v]) {
      if (proc[static_cast<std::size_t>(nb)] != proc[v]) ++cut;
    }
  }
  return cut / 2;
}

std::int64_t moved_weight(const dual::DualGraph& g,
                          const std::vector<Rank>& before,
                          const std::vector<Rank>& after) {
  std::int64_t moved = 0;
  for (std::size_t v = 0; v < before.size(); ++v) {
    if (before[v] != after[v]) moved += g.wremap[v];
  }
  return moved;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchConfig cfg = plumbench::parse_args(argc, argv);
  const mesh::Mesh initial = plumbench::paper_mesh(cfg);
  const int P = cfg.procs.back();

  for (const auto kind :
       {adapt::StrategyKind::kLocal1, adapt::StrategyKind::kLocal2}) {
    dual::DualGraph dualg = dual::build_dual_graph(initial);
    const auto cur_part = plumbench::initial_placement(dualg, P);

    mesh::Mesh adapted = initial;
    const auto strategy = adapt::make_strategy(kind, initial, cfg.seed);
    strategy.apply_refine(adapted);
    adapt::refine_marked(adapted);
    dual::update_weights(dualg, adapted);

    Table t(std::string("Baselines — ") + strategy.name() + " @P=" +
            std::to_string(P) +
            ": global (PLUM) vs diffusion vs incremental repartitioning");
    t.header({"method", "imbalance", "W_remap moved", "edge cut",
              "sweeps/steps"})
        .precision(3);

    const balance::LoadInfo before =
        balance::compute_load(cur_part, dualg.wcomp, P);
    t.row({std::string("(before)"), before.imbalance, 0LL,
           static_cast<long long>(cut_of(dualg, cur_part)),
           std::string("-")});

    {
      balance::LoadBalancerConfig lcfg;
      lcfg.partitioner = "mlspectral";
      lcfg.use_cost_decision = false;
      const auto out =
          balance::run_load_balancer(dualg, cur_part, P, lcfg);
      t.row({std::string("PLUM (mlspectral+heuristic)"),
             out.new_load.imbalance,
             static_cast<long long>(
                 moved_weight(dualg, cur_part, out.proc_of_vertex)),
             static_cast<long long>(cut_of(dualg, out.proc_of_vertex)),
             std::string("1 repartition")});
    }
    {
      const auto out =
          balance::run_diffusion_balancer(dualg, cur_part, P, {});
      t.row({std::string("diffusion (Cybenko)"), out.new_load.imbalance,
             static_cast<long long>(out.weight_moved),
             static_cast<long long>(cut_of(dualg, out.proc_of_vertex)),
             std::to_string(out.sweeps) + " sweeps"});
    }
    {
      const auto out =
          balance::run_repartitioner(dualg, cur_part, P, {});
      t.row({std::string("incremental repart"), out.new_load.imbalance,
             static_cast<long long>(out.weight_moved),
             static_cast<long long>(out.edgecut),
             std::to_string(out.sweeps) + " sweeps"});
    }
    plumbench::print_table(t, cfg);
  }
  return 0;
}
