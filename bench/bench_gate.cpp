// bench_gate — the CI perf gate (no Python, no external JSON library).
//
//   bench_gate --baseline bench/baselines/BENCH_comm_quick.json \
//              --current BENCH_comm.json [--tolerance 0.10] \
//              [--min-abs-us 50] [--field SUBSTR] \
//              [--max-field [record.]field=VALUE]... \
//              [--min-field [record.]field=VALUE]...
//
// Compares every wall-clock field of the current BENCH_*.json against
// the committed baseline (see bench/gate.hpp for matching rules) and
// exits nonzero when any timing regressed beyond tolerance.  Wall
// clocks vary across machines, so CI invokes this with a generous
// tolerance — the gate exists to catch order-of-magnitude regressions
// (an accidentally quadratic loop, instrumentation that stopped being
// free), not single-digit percent drift.
//
// `--max-field` adds absolute ceilings evaluated on the current file
// alone (e.g. `--max-field migrate_full.overlap_ratio=0.65` — the
// simulated overlap criterion, which no baseline-relative tolerance can
// express).  `--min-field` is the floor mirror (e.g. `--min-field
// migrate_critpath.reconciled=1` asserts the critical path reconciled
// with the migration wall on every record) — together they bound a
// ratio from both sides.  With at least one `--max-field`/`--min-field`,
// `--baseline` becomes optional: the gate then runs only the absolute
// assertions.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "gate.hpp"

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string current_path;
  std::vector<plumbench::MaxFieldLimit> limits;
  std::vector<plumbench::MinFieldLimit> min_limits;
  plumbench::GateConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_gate: missing value for %s\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--baseline") {
      baseline_path = next();
    } else if (a == "--current") {
      current_path = next();
    } else if (a == "--tolerance") {
      cfg.tolerance = std::atof(next());
    } else if (a == "--min-abs-us") {
      cfg.min_abs_us = std::atof(next());
    } else if (a == "--field") {
      cfg.field_filter = next();
    } else if (a == "--max-field" || a == "--min-field") {
      const bool is_max = a == "--max-field";
      const std::string spec = next();
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= spec.size()) {
        std::fprintf(stderr,
                     "bench_gate: %s wants [record.]field=VALUE, got %s\n",
                     a.c_str(), spec.c_str());
        return 2;
      }
      std::string record, field;
      std::string name = spec.substr(0, eq);
      const std::size_t dot = name.find('.');
      if (dot != std::string::npos) {
        record = name.substr(0, dot);
        field = name.substr(dot + 1);
      } else {
        field = std::move(name);
      }
      const double value = std::atof(spec.c_str() + eq + 1);
      if (is_max) {
        limits.push_back(plumbench::MaxFieldLimit{
            std::move(record), std::move(field), value});
      } else {
        min_limits.push_back(plumbench::MinFieldLimit{
            std::move(record), std::move(field), value});
      }
    } else {
      std::fprintf(stderr,
                   "usage: bench_gate --baseline FILE --current FILE "
                   "[--tolerance X] [--min-abs-us Y] [--field SUBSTR] "
                   "[--max-field [record.]field=VALUE]... "
                   "[--min-field [record.]field=VALUE]...\n");
      return 2;
    }
  }
  if (current_path.empty() ||
      (baseline_path.empty() && limits.empty() && min_limits.empty())) {
    std::fprintf(stderr,
                 "bench_gate: --current plus --baseline and/or "
                 "--max-field/--min-field are required\n");
    return 2;
  }

  std::string err;
  const auto current = plum::parse_json_file(current_path, &err);
  if (!current) {
    std::fprintf(stderr, "bench_gate: %s\n", err.c_str());
    return 2;
  }

  int failures = 0;
  std::size_t compared = 0;

  if (!baseline_path.empty()) {
    const auto baseline = plum::parse_json_file(baseline_path, &err);
    if (!baseline) {
      std::fprintf(stderr, "bench_gate: %s\n", err.c_str());
      return 2;
    }
    const plumbench::GateResult res =
        plumbench::run_gate(*current, *baseline, cfg);
    if (!res.error.empty()) {
      std::fprintf(stderr, "bench_gate: %s\n", res.error.c_str());
      return 2;
    }
    std::printf("bench_gate: %s vs baseline %s (tolerance %.0f%%, floor "
                "%.0f us)\n",
                current_path.c_str(), baseline_path.c_str(),
                cfg.tolerance * 100.0, cfg.min_abs_us);
    for (const auto& c : res.comparisons) {
      std::printf("  %-8s %-55s %12.1f -> %12.1f  (%5.2fx)\n",
                  c.regression ? "REGRESS" : "ok", c.key.c_str(),
                  c.baseline_us, c.current_us, c.ratio);
    }
    for (const auto& u : res.unmatched) {
      std::printf("  note     %s (not compared)\n", u.c_str());
    }
    failures += res.regressions();
    compared += res.comparisons.size();
  }

  if (!limits.empty()) {
    std::string max_err;
    const std::vector<plumbench::MaxFieldCheck> checks =
        plumbench::run_max_field_checks(*current, limits, &max_err);
    if (!max_err.empty()) {
      std::fprintf(stderr, "bench_gate: %s\n", max_err.c_str());
      return 2;
    }
    for (const auto& c : checks) {
      std::printf("  %-8s %-55s %12.4f <= %10.4f\n",
                  c.violation ? "EXCEEDS" : "ok", c.key.c_str(), c.value,
                  c.limit);
      failures += c.violation ? 1 : 0;
    }
    compared += checks.size();
  }

  if (!min_limits.empty()) {
    std::string min_err;
    const std::vector<plumbench::MinFieldCheck> checks =
        plumbench::run_min_field_checks(*current, min_limits, &min_err);
    if (!min_err.empty()) {
      std::fprintf(stderr, "bench_gate: %s\n", min_err.c_str());
      return 2;
    }
    for (const auto& c : checks) {
      std::printf("  %-8s %-55s %12.4f >= %10.4f\n",
                  c.violation ? "BELOW" : "ok", c.key.c_str(), c.value,
                  c.limit);
      failures += c.violation ? 1 : 0;
    }
    compared += checks.size();
  }

  std::printf("bench_gate: %zu checks, %d failure(s)\n", compared,
              failures);
  return failures > 0 ? 1 : 0;
}
