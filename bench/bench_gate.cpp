// bench_gate — the CI perf gate (no Python, no external JSON library).
//
//   bench_gate --baseline bench/baselines/BENCH_comm_quick.json \
//              --current BENCH_comm.json [--tolerance 0.10] \
//              [--min-abs-us 50] [--field SUBSTR]
//
// Compares every wall-clock field of the current BENCH_*.json against
// the committed baseline (see bench/gate.hpp for matching rules) and
// exits nonzero when any timing regressed beyond tolerance.  Wall
// clocks vary across machines, so CI invokes this with a generous
// tolerance — the gate exists to catch order-of-magnitude regressions
// (an accidentally quadratic loop, instrumentation that stopped being
// free), not single-digit percent drift.
#include <cstdio>
#include <cstring>
#include <string>

#include "gate.hpp"

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string current_path;
  plumbench::GateConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_gate: missing value for %s\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--baseline") {
      baseline_path = next();
    } else if (a == "--current") {
      current_path = next();
    } else if (a == "--tolerance") {
      cfg.tolerance = std::atof(next());
    } else if (a == "--min-abs-us") {
      cfg.min_abs_us = std::atof(next());
    } else if (a == "--field") {
      cfg.field_filter = next();
    } else {
      std::fprintf(stderr,
                   "usage: bench_gate --baseline FILE --current FILE "
                   "[--tolerance X] [--min-abs-us Y] [--field SUBSTR]\n");
      return 2;
    }
  }
  if (baseline_path.empty() || current_path.empty()) {
    std::fprintf(stderr,
                 "bench_gate: --baseline and --current are required\n");
    return 2;
  }

  std::string err;
  const auto baseline = plum::parse_json_file(baseline_path, &err);
  if (!baseline) {
    std::fprintf(stderr, "bench_gate: %s\n", err.c_str());
    return 2;
  }
  const auto current = plum::parse_json_file(current_path, &err);
  if (!current) {
    std::fprintf(stderr, "bench_gate: %s\n", err.c_str());
    return 2;
  }

  const plumbench::GateResult res =
      plumbench::run_gate(*current, *baseline, cfg);
  if (!res.error.empty()) {
    std::fprintf(stderr, "bench_gate: %s\n", res.error.c_str());
    return 2;
  }

  std::printf("bench_gate: %s vs baseline %s (tolerance %.0f%%, floor "
              "%.0f us)\n",
              current_path.c_str(), baseline_path.c_str(),
              cfg.tolerance * 100.0, cfg.min_abs_us);
  for (const auto& c : res.comparisons) {
    std::printf("  %-8s %-55s %12.1f -> %12.1f  (%5.2fx)\n",
                c.regression ? "REGRESS" : "ok", c.key.c_str(),
                c.baseline_us, c.current_us, c.ratio);
  }
  for (const auto& u : res.unmatched) {
    std::printf("  note     %s (not compared)\n", u.c_str());
  }
  const int regressions = res.regressions();
  std::printf("bench_gate: %zu timings compared, %d regression(s)\n",
              res.comparisons.size(), regressions);
  return regressions > 0 ? 1 : 0;
}
