// Shared infrastructure for the per-table / per-figure benchmark
// harnesses.
//
// Every bench accepts:
//   --n <cells>    box-mesh cells per side (default 22 = paper scale,
//                  63,888 tets vs the paper's 60,968)
//   --procs a,b,c  processor counts to sweep (default 1..64 by doubling)
//   --quick        shrink to n=8 and P<=16 for smoke runs
//   --csv          emit CSV after each table
//
// All benches print the paper's reference numbers next to the measured
// ones wherever the paper states them, so the reproduction claims in
// EXPERIMENTS.md can be regenerated with `for b in build/bench/*; do $b; done`.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "adapt/adaptor.hpp"
#include "adapt/marking.hpp"
#include "dualgraph/dual_graph.hpp"
#include "mesh/box_mesh.hpp"
#include "partition/partitioner.hpp"
#include "simmpi/machine.hpp"
#include "support/footprint.hpp"
#include "support/json.hpp"
#include "support/table.hpp"

namespace plumbench {

struct BenchConfig {
  int n = 22;
  std::vector<int> procs = {1, 2, 4, 8, 16, 32, 64};
  bool csv = false;
  std::uint64_t seed = 0x9601;
};

inline BenchConfig parse_args(int argc, char** argv) {
  BenchConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&] {
      PLUM_CHECK_MSG(i + 1 < argc, "missing value for " << a);
      return std::string(argv[++i]);
    };
    if (a == "--n") {
      cfg.n = std::stoi(next());
    } else if (a == "--procs") {
      cfg.procs.clear();
      std::string list = next();
      std::size_t pos = 0;
      while (pos < list.size()) {
        std::size_t comma = list.find(',', pos);
        if (comma == std::string::npos) comma = list.size();
        cfg.procs.push_back(std::stoi(list.substr(pos, comma - pos)));
        pos = comma + 1;
      }
    } else if (a == "--quick") {
      cfg.n = 8;
      cfg.procs = {1, 2, 4, 8, 16};
    } else if (a == "--csv") {
      cfg.csv = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--n N] [--procs a,b,c] [--quick] [--csv]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return cfg;
}

inline void print_table(const plum::Table& t, const BenchConfig& cfg) {
  t.print();
  if (cfg.csv) std::printf("%s\n", t.csv().c_str());
}

/// The paper-scale substitute mesh (DESIGN.md §1).
inline plum::mesh::Mesh paper_mesh(const BenchConfig& cfg) {
  return plum::mesh::make_cube_mesh(cfg.n);
}

/// The three §10 strategies, calibrated once on the initial mesh.
inline std::vector<plum::adapt::Strategy> paper_strategies(
    const plum::mesh::Mesh& initial, std::uint64_t seed) {
  using plum::adapt::make_strategy;
  using plum::adapt::StrategyKind;
  return {make_strategy(StrategyKind::kLocal1, initial, seed),
          make_strategy(StrategyKind::kLocal2, initial, seed),
          make_strategy(StrategyKind::kRandom, initial, seed)};
}

/// Initial balanced placement of the dual graph over P processors.
inline std::vector<plum::Rank> initial_placement(
    const plum::dual::DualGraph& g, int nprocs) {
  const auto r =
      plum::partition::make_partitioner("rcb")->partition(g, nprocs);
  return std::vector<plum::Rank>(r.part.begin(), r.part.end());
}

/// Machine-readable result sink (shared with the obs exporters; see
/// support/json.hpp).  Benches add() one record per measurement and
/// write() them as a JSON document so CI and the before/after
/// comparisons in EXPERIMENTS.md can diff runs without scraping tables.
using plum::JsonEmitter;

/// Peak resident set of this process in MB — shared with `plum soak`
/// via support/footprint.hpp; re-exported here for the benches'
/// `run_footprint` records.
using plum::peak_rss_mb;

/// Wall-clock helper (for the mapper-time measurements of Fig. 10,
/// which the paper reports in real seconds).
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double elapsed_us() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace plumbench
