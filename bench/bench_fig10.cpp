// Figure 10: "Comparison of the optimal and heuristic mappers in terms
// of (a) execution time and (b) volume of data movement for the Local_2
// refinement strategy", F = 1, 2, 4, 8.
//
// Times here are real wall-clock (the mappers are deterministic serial
// algorithms; this is the one measurement where our hardware plays the
// same role as the paper's).  Expected shapes: "the optimal method
// always requires almost two orders of magnitude more time than our
// heuristic method"; times grow with F; "the volume of data movement
// decreases with increasing F"; and the headline claim that the
// heuristic is "less than 3% off the optimal solutions but requires
// only 1% of the computational time".
#include <cstdio>

#include <map>

#include "balance/cost_model.hpp"
#include "balance/remapper.hpp"
#include "common.hpp"

using namespace plum;
using plumbench::BenchConfig;

int main(int argc, char** argv) {
  const BenchConfig cfg = plumbench::parse_args(argc, argv);
  const mesh::Mesh initial = plumbench::paper_mesh(cfg);
  dual::DualGraph dualg = dual::build_dual_graph(initial);

  // Current placements are computed on the *initial* (uniform) weights
  // — they are where the data sits before the adaption step.
  std::map<int, std::vector<Rank>> current_of;
  for (const int P : cfg.procs) {
    if (P >= 2) current_of[P] = plumbench::initial_placement(dualg, P);
  }

  // Local_2 refinement (serial is fine: the mappers only see the dual
  // weights, which are identical however the mesh was adapted).
  mesh::Mesh adapted = initial;
  const auto strategy =
      adapt::make_strategy(adapt::StrategyKind::kLocal2, initial, cfg.seed);
  strategy.apply_refine(adapted);
  adapt::refine_marked(adapted);
  dual::update_weights(dualg, adapted);

  const std::vector<int> factors = {1, 2, 4, 8};
  Table ta("Fig. 10(a) — mapper execution time, Local_2 (wall-clock ms)");
  {
    std::vector<std::string> hdr{"P"};
    for (const int F : factors) {
      hdr.push_back("heur F=" + std::to_string(F));
      hdr.push_back("opt F=" + std::to_string(F));
    }
    ta.header(hdr).precision(3);
  }
  Table tb("Fig. 10(b) — elements moved (data volume), Local_2");
  {
    std::vector<std::string> hdr{"P"};
    for (const int F : factors) {
      hdr.push_back("heur F=" + std::to_string(F));
      hdr.push_back("opt F=" + std::to_string(F));
    }
    tb.header(hdr);
  }

  double worst_gap = 0.0, worst_time_ratio = 0.0;
  for (const int P : cfg.procs) {
    if (P < 2) continue;
    std::vector<Table::Cell> row_t{static_cast<long long>(P)};
    std::vector<Table::Cell> row_v{static_cast<long long>(P)};
    const auto& current = current_of.at(P);
    for (const int F : factors) {
      const auto newpart =
          partition::make_partitioner("rcb")->partition(dualg, P * F);
      const auto s = balance::SimilarityMatrix::build(
          current, newpart.part, dualg.wremap, P, F);

      plumbench::WallTimer th;
      const auto heur = balance::heuristic_assign(s);
      const double t_heur = th.elapsed_us();
      plumbench::WallTimer to;
      const auto opt = balance::optimal_assign(s);
      const double t_opt = to.elapsed_us();

      row_t.emplace_back(t_heur / 1000.0);
      row_t.emplace_back(t_opt / 1000.0);
      row_v.emplace_back(static_cast<long long>(s.total() - heur.objective));
      row_v.emplace_back(static_cast<long long>(s.total() - opt.objective));

      const double gap =
          opt.objective > 0
              ? 1.0 - static_cast<double>(heur.objective) /
                          static_cast<double>(opt.objective)
              : 0.0;
      worst_gap = std::max(worst_gap, gap);
      // The ~1% claim is about matrices of real size; tiny matrices are
      // all noise.  Evaluate it where the paper does: the big end.
      if (P * F >= 256) {
        worst_time_ratio = std::max(worst_time_ratio, t_heur / t_opt);
      }
    }
    ta.row(row_t);
    tb.row(row_v);
    std::fprintf(stderr, "  [fig10] P=%d done\n", P);
  }
  plumbench::print_table(ta, cfg);
  plumbench::print_table(tb, cfg);

  std::printf("claim: heuristic objective within %.2f%% of optimal across "
              "all (P,F) (paper: <3%%)\n",
              100.0 * worst_gap);
  std::printf("claim: heuristic time / optimal time worst case %.2f%% at "
              "P*F>=256 (paper: ~1%%; see bench_mapper_micro for the "
              "scaling beyond the paper's sizes)\n",
              100.0 * worst_time_ratio);
  return 0;
}
