// Perf-gate comparison logic for BENCH_*.json documents (the
// JsonEmitter format: {"bench", "schema_version", "results": [...]}).
//
// Header-only so both the bench_gate CLI tool and the unit tests share
// one implementation.  The gate matches records between a committed
// baseline and a fresh run by (name + identity fields), then compares
// every wall-clock field (any field whose name contains "_us"); a
// regression is a timing that grew beyond the relative tolerance AND
// the absolute floor — the floor keeps micro-benchmark noise on
// sub-millisecond timings from tripping CI.
//
// Baseline records with no matching current record (or vice versa) are
// reported but do not fail the gate: renaming or re-parameterizing a
// bench legitimately changes the record set, and the committed baseline
// is regenerated in the same PR.  Only a matched, slower timing fails.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/json_parse.hpp"

namespace plumbench {

struct GateConfig {
  /// Allowed relative slowdown: fail when cur > base * (1 + tolerance).
  double tolerance = 0.10;
  /// Absolute floor: additionally require cur - base > this many µs.
  double min_abs_us = 50.0;
  /// When non-empty, only timing fields whose name contains this
  /// substring are compared.  CI gates "wall_us" (the aggregates):
  /// sub-phase timings of a threaded run are scheduler-noisy enough to
  /// flap even under a generous tolerance, while the per-record wall
  /// clock is stable.
  std::string field_filter;
};

struct GateComparison {
  std::string key;        ///< record identity + field name
  double baseline_us = 0.0;
  double current_us = 0.0;
  double ratio = 1.0;     ///< current / baseline (1.0 when baseline is 0)
  bool regression = false;
};

struct GateResult {
  std::vector<GateComparison> comparisons;
  /// Baseline records without a current match + the reverse.
  std::vector<std::string> unmatched;
  std::string error;  ///< non-empty when either document was malformed

  int regressions() const {
    int n = 0;
    for (const auto& c : comparisons) n += c.regression ? 1 : 0;
    return n;
  }
  bool ok() const { return error.empty() && regressions() == 0; }
};

namespace gate_detail {

/// Fields that parameterize a record (identity) rather than measure it.
inline bool is_identity_field(std::string_view k) {
  return k == "n" || k == "P" || k == "rounds";
}

/// Wall-clock measurement fields ("wall_us", "pack_us",
/// "wall_us_per_round", ...).
inline bool is_timing_field(std::string_view k) {
  return k.find("_us") != std::string_view::npos;
}

inline std::string record_key(const plum::JsonValue& rec) {
  std::string key = rec.string_or("name", "?");
  for (const auto& [k, v] : rec.object) {
    if (is_identity_field(k) && v.is_number()) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), " %s=%.0f", k.c_str(), v.number);
      key += buf;
    }
  }
  return key;
}

inline const plum::JsonValue* results_of(const plum::JsonValue& doc,
                                         std::string* error,
                                         const char* which) {
  const plum::JsonValue* results = doc.find("results");
  if (results == nullptr || !results->is_array()) {
    if (error != nullptr && error->empty()) {
      *error = std::string(which) + " document has no \"results\" array";
    }
    return nullptr;
  }
  return results;
}

}  // namespace gate_detail

/// An absolute bound on a field of the *current* document alone — no
/// baseline involved.  Used for criteria that are not machine-relative:
/// the migration overlap ratio, say, must stay below a fixed ceiling
/// however fast the host is, and a reconciliation flag must stay above
/// a floor.  `record` empty means "any record carrying the field";
/// otherwise only records with that name are checked.
struct MaxFieldLimit {
  std::string record;  ///< record name filter ("" = all records)
  std::string field;
  double max = 0.0;
};

/// The --min-field mirror: value < min is a violation.
struct MinFieldLimit {
  std::string record;  ///< record name filter ("" = all records)
  std::string field;
  double min = 0.0;
};

struct MaxFieldCheck {
  std::string key;  ///< record identity + field name
  double value = 0.0;
  double limit = 0.0;
  bool violation = false;
};
/// Same shape for floors; separate alias so call sites read clearly.
using MinFieldCheck = MaxFieldCheck;

namespace gate_detail {

/// Shared evaluator of absolute field bounds.  `is_max` selects the
/// violation direction (value > limit vs value < limit).
inline std::vector<MaxFieldCheck> run_field_bound_checks(
    const plum::JsonValue& current, const char* which,
    const std::vector<std::pair<MaxFieldLimit, bool>>& limits,
    std::string* error) {
  std::vector<MaxFieldCheck> out;
  const plum::JsonValue* results = results_of(current, error, "current");
  if (results == nullptr) return out;
  for (const auto& [lim, is_max] : limits) {
    bool seen = false;
    for (const plum::JsonValue& rec : results->array) {
      if (!lim.record.empty() && rec.string_or("name", "?") != lim.record) {
        continue;
      }
      const plum::JsonValue* v = rec.find(lim.field);
      if (v == nullptr || !v->is_number()) continue;
      seen = true;
      MaxFieldCheck c;
      c.key = record_key(rec) + "." + lim.field;
      c.value = v->number;
      c.limit = lim.max;
      c.violation = is_max ? v->number > lim.max : v->number < lim.max;
      out.push_back(std::move(c));
    }
    if (!seen && error != nullptr && error->empty()) {
      *error = std::string("no record carries ") + which + "-field " +
               (lim.record.empty() ? lim.field
                                   : lim.record + "." + lim.field);
    }
  }
  return out;
}

}  // namespace gate_detail

/// Evaluates ceiling `limits` against every matching record of
/// `current`.  A limit that matches no record at all is an error (the
/// assertion would silently gate nothing).
inline std::vector<MaxFieldCheck> run_max_field_checks(
    const plum::JsonValue& current, const std::vector<MaxFieldLimit>& limits,
    std::string* error) {
  std::vector<std::pair<MaxFieldLimit, bool>> bounds;
  bounds.reserve(limits.size());
  for (const MaxFieldLimit& lim : limits) bounds.emplace_back(lim, true);
  return gate_detail::run_field_bound_checks(current, "max", bounds, error);
}

/// The floor mirror of run_max_field_checks: a matched value below
/// `min` is a violation; a limit matching no record is an error.
inline std::vector<MinFieldCheck> run_min_field_checks(
    const plum::JsonValue& current, const std::vector<MinFieldLimit>& limits,
    std::string* error) {
  std::vector<std::pair<MaxFieldLimit, bool>> bounds;
  bounds.reserve(limits.size());
  for (const MinFieldLimit& lim : limits) {
    bounds.emplace_back(MaxFieldLimit{lim.record, lim.field, lim.min},
                        false);
  }
  return gate_detail::run_field_bound_checks(current, "min", bounds, error);
}

/// Compares `current` against `baseline` (both JsonEmitter documents).
inline GateResult run_gate(const plum::JsonValue& current,
                           const plum::JsonValue& baseline,
                           const GateConfig& cfg) {
  using gate_detail::is_timing_field;
  using gate_detail::record_key;
  GateResult out;
  const plum::JsonValue* base_results =
      gate_detail::results_of(baseline, &out.error, "baseline");
  const plum::JsonValue* cur_results =
      gate_detail::results_of(current, &out.error, "current");
  if (base_results == nullptr || cur_results == nullptr) return out;

  std::vector<bool> cur_matched(cur_results->array.size(), false);
  for (const plum::JsonValue& base_rec : base_results->array) {
    const std::string key = record_key(base_rec);
    const plum::JsonValue* cur_rec = nullptr;
    for (std::size_t i = 0; i < cur_results->array.size(); ++i) {
      if (!cur_matched[i] && record_key(cur_results->array[i]) == key) {
        cur_rec = &cur_results->array[i];
        cur_matched[i] = true;
        break;
      }
    }
    if (cur_rec == nullptr) {
      out.unmatched.push_back("baseline-only: " + key);
      continue;
    }
    for (const auto& [field, bv] : base_rec.object) {
      if (!is_timing_field(field) || !bv.is_number()) continue;
      if (!cfg.field_filter.empty() &&
          field.find(cfg.field_filter) == std::string::npos) {
        continue;
      }
      const plum::JsonValue* cv = cur_rec->find(field);
      if (cv == nullptr || !cv->is_number()) {
        out.unmatched.push_back("baseline-only: " + key + "." + field);
        continue;
      }
      GateComparison c;
      c.key = key + "." + field;
      c.baseline_us = bv.number;
      c.current_us = cv->number;
      c.ratio = bv.number > 0.0 ? cv->number / bv.number : 1.0;
      c.regression =
          c.current_us > c.baseline_us * (1.0 + cfg.tolerance) &&
          c.current_us - c.baseline_us > cfg.min_abs_us;
      out.comparisons.push_back(std::move(c));
    }
  }
  for (std::size_t i = 0; i < cur_results->array.size(); ++i) {
    if (!cur_matched[i]) {
      out.unmatched.push_back("current-only: " +
                              record_key(cur_results->array[i]));
    }
  }
  return out;
}

}  // namespace plumbench
