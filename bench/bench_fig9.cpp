// Figure 9: "Anatomy of total execution times for the (a) Local_1 and
// (b) Local_2 refinement strategies" — per-phase times (mesh adaption,
// processor reassignment, remapping) vs processor count, F = 1,
// heuristic mapper.  (Repartitioning time is excluded, as in the
// paper.)
//
// Expected shapes: remapping time initially increases with P then
// gradually decreases ("even though the total volume of data movement
// increases with the number of processors, there are actually more
// processors to share the work"); reassignment time increases with P
// but "remains negligible compared to the adaption and remapping
// times"; adaption time decreases with P.
#include <cstdio>

#include "common.hpp"
#include "parallel/framework.hpp"

using namespace plum;
using plumbench::BenchConfig;

namespace {

struct Anatomy {
  double adaption_us = 0.0;
  double reassignment_us = 0.0;
  double remapping_us = 0.0;
};

Anatomy run_once(const mesh::Mesh& global, const dual::DualGraph& dualg,
                 const adapt::Strategy& strategy, int P) {
  const auto proc = plumbench::initial_placement(dualg, P);
  std::vector<Anatomy> per_rank(static_cast<std::size_t>(P));

  parallel::FrameworkConfig fcfg;
  fcfg.solver_iterations = 0;
  fcfg.balancer.partitioner = "rcb";
  fcfg.balancer.remapper = "heuristic";
  fcfg.balancer.factor = 1;
  fcfg.balancer.use_cost_decision = false;  // always remap: we time it
  fcfg.balancer.imbalance_threshold = 1.0;  // always repartition

  simmpi::Machine machine;
  machine.run(P, [&](simmpi::Comm& comm) {
    parallel::PlumFramework fw(&comm, global, dualg, proc, fcfg);
    comm.barrier();
    const double t0 = comm.clock().now();
    fw.refine_with([&](mesh::Mesh& m) { strategy.apply_refine(m); });
    comm.barrier();
    const double t1 = comm.clock().now();
    fw.refresh_weights();
    // Partitioning runs here too but is excluded from the reassignment
    // number: we time only the similarity-matrix + mapper charge.
    const auto outcome = fw.balance_only();
    comm.barrier();
    const double t2_unused = comm.clock().now();
    (void)t2_unused;
    fw.migrate_to(outcome.proc_of_vertex);
    comm.barrier();
    const double t3 = comm.clock().now();

    auto& a = per_rank[static_cast<std::size_t>(comm.rank())];
    a.adaption_us = t1 - t0;
    // Reassignment: the deterministic mapper charge (see
    // PlumFramework::balance_only) — identical on all ranks.
    const double cols = static_cast<double>(comm.size());
    a.reassignment_us =
        (cols * cols + cols * cols) * comm.cost().c_reassign_step_us;
    a.remapping_us = t3 - t1 - a.reassignment_us;
    if (a.remapping_us < 0) a.remapping_us = t3 - t1;
  });

  Anatomy out;
  for (const auto& a : per_rank) {
    out.adaption_us = std::max(out.adaption_us, a.adaption_us);
    out.reassignment_us = std::max(out.reassignment_us, a.reassignment_us);
    out.remapping_us = std::max(out.remapping_us, a.remapping_us);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchConfig cfg = plumbench::parse_args(argc, argv);
  const mesh::Mesh global = plumbench::paper_mesh(cfg);
  const dual::DualGraph dualg = dual::build_dual_graph(global);
  const auto strategies = plumbench::paper_strategies(global, cfg.seed);

  for (int s : {0, 1}) {  // Local_1, Local_2
    Table t(std::string("Fig. 9") + (s == 0 ? "(a)" : "(b)") +
            " — anatomy of execution time, " + strategies[s].name() +
            " refinement (simulated ms)");
    t.header({"P", "adaption", "reassignment", "remapping"}).precision(3);
    std::vector<Anatomy> series;
    for (const int P : cfg.procs) {
      if (P < 2) continue;  // remapping needs somewhere to move data
      series.push_back(
          run_once(global, dualg, strategies[static_cast<std::size_t>(s)], P));
      const Anatomy& a = series.back();
      t.row({static_cast<long long>(P), a.adaption_us / 1000.0,
             a.reassignment_us / 1000.0, a.remapping_us / 1000.0});
      std::fprintf(stderr, "  [fig9] %s P=%d done\n",
                   strategies[static_cast<std::size_t>(s)].name(), P);
    }
    plumbench::print_table(t, cfg);

    // Shape checks.
    bool reassign_negligible = true;
    for (const auto& a : series) {
      if (a.reassignment_us > 0.5 * std::max(a.adaption_us, a.remapping_us)) {
        reassign_negligible = false;
      }
    }
    std::printf("shape[%s]: reassignment negligible vs adaption+remapping "
                "at every P: %s\n",
                strategies[static_cast<std::size_t>(s)].name(),
                reassign_negligible ? "yes" : "NO");
    if (series.size() >= 3) {
      const double first = series.front().remapping_us;
      const double last = series.back().remapping_us;
      double peak = 0.0;
      for (const auto& a : series) peak = std::max(peak, a.remapping_us);
      std::printf("shape[%s]: remapping rises then falls with P "
                  "(first %.2fms, peak %.2fms, last %.2fms): %s\n",
                  strategies[static_cast<std::size_t>(s)].name(),
                  first / 1000.0, peak / 1000.0, last / 1000.0,
                  (peak >= first && last <= peak) ? "yes" : "NO");
    }
  }
  return 0;
}
