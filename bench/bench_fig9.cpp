// Figure 9: "Anatomy of total execution times for the (a) Local_1 and
// (b) Local_2 refinement strategies" — per-phase times (mesh adaption,
// processor reassignment, remapping) vs processor count, F = 1,
// heuristic mapper.  (Repartitioning time is excluded, as in the
// paper.)
//
// Expected shapes: remapping time initially increases with P then
// gradually decreases ("even though the total volume of data movement
// increases with the number of processors, there are actually more
// processors to share the work"); reassignment time increases with P
// but "remains negligible compared to the adaption and remapping
// times"; adaption time decreases with P.
#include <cstdio>

#include "common.hpp"
#include "parallel/framework.hpp"
#include "simmpi/obs.hpp"

using namespace plum;
using plumbench::BenchConfig;

namespace {

struct Anatomy {
  double adaption_us = 0.0;
  double reassignment_us = 0.0;
  double remapping_us = 0.0;
};

Anatomy run_once(const mesh::Mesh& global, const dual::DualGraph& dualg,
                 const adapt::Strategy& strategy, int P) {
  const auto proc = plumbench::initial_placement(dualg, P);

  parallel::FrameworkConfig fcfg;
  fcfg.solver_iterations = 0;
  fcfg.balancer.partitioner = "rcb";
  fcfg.balancer.remapper = "heuristic";
  fcfg.balancer.factor = 1;
  fcfg.balancer.use_cost_decision = false;  // always remap: we time it
  fcfg.balancer.imbalance_threshold = 1.0;  // always repartition

  simmpi::Machine machine;
  machine.set_tracing(true);
  const simmpi::MachineReport report =
      machine.run(P, [&](simmpi::Comm& comm) {
        parallel::PlumFramework fw(&comm, global, dualg, proc, fcfg);
        fw.refine_with([&](mesh::Mesh& m) { strategy.apply_refine(m); });
        fw.refresh_weights();
        const auto outcome = fw.balance_only();
        fw.migrate_to(outcome.proc_of_vertex);
      });

  // The anatomy falls straight out of the phase tree: "refine" is the
  // adaption, "balance/reassign" the mapper charge (partitioning lives
  // in its sibling "partition" phase and is excluded, as in the paper),
  // "migrate" the remapping.  All numbers are slowest-rank inclusive
  // simulated time.
  const obs::PhaseReport phases = obs::merge_phases(report);
  const auto wall_max = [&](std::initializer_list<const char*> path) {
    const obs::PhaseReport* n = phases.find(path);
    return n != nullptr ? n->max().wall_us : 0.0;
  };
  Anatomy out;
  out.adaption_us = wall_max({"refine"});
  out.reassignment_us = wall_max({"balance", "reassign"});
  out.remapping_us = wall_max({"migrate"});
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchConfig cfg = plumbench::parse_args(argc, argv);
  const mesh::Mesh global = plumbench::paper_mesh(cfg);
  const dual::DualGraph dualg = dual::build_dual_graph(global);
  const auto strategies = plumbench::paper_strategies(global, cfg.seed);

  for (int s : {0, 1}) {  // Local_1, Local_2
    Table t(std::string("Fig. 9") + (s == 0 ? "(a)" : "(b)") +
            " — anatomy of execution time, " + strategies[s].name() +
            " refinement (simulated ms)");
    t.header({"P", "adaption", "reassignment", "remapping"}).precision(3);
    std::vector<Anatomy> series;
    for (const int P : cfg.procs) {
      if (P < 2) continue;  // remapping needs somewhere to move data
      series.push_back(
          run_once(global, dualg, strategies[static_cast<std::size_t>(s)], P));
      const Anatomy& a = series.back();
      t.row({static_cast<long long>(P), a.adaption_us / 1000.0,
             a.reassignment_us / 1000.0, a.remapping_us / 1000.0});
      std::fprintf(stderr, "  [fig9] %s P=%d done\n",
                   strategies[static_cast<std::size_t>(s)].name(), P);
    }
    plumbench::print_table(t, cfg);

    // Shape checks.
    bool reassign_negligible = true;
    for (const auto& a : series) {
      if (a.reassignment_us > 0.5 * std::max(a.adaption_us, a.remapping_us)) {
        reassign_negligible = false;
      }
    }
    std::printf("shape[%s]: reassignment negligible vs adaption+remapping "
                "at every P: %s\n",
                strategies[static_cast<std::size_t>(s)].name(),
                reassign_negligible ? "yes" : "NO");
    if (series.size() >= 3) {
      const double first = series.front().remapping_us;
      const double last = series.back().remapping_us;
      double peak = 0.0;
      for (const auto& a : series) peak = std::max(peak, a.remapping_us);
      std::printf("shape[%s]: remapping rises then falls with P "
                  "(first %.2fms, peak %.2fms, last %.2fms): %s\n",
                  strategies[static_cast<std::size_t>(s)].name(),
                  first / 1000.0, peak / 1000.0, last / 1000.0,
                  (peak >= first && last <= peak) ? "yes" : "NO");
    }
  }
  return 0;
}
