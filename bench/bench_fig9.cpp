// Figure 9: "Anatomy of total execution times for the (a) Local_1 and
// (b) Local_2 refinement strategies" — per-phase times (mesh adaption,
// processor reassignment, remapping) vs processor count, F = 1,
// heuristic mapper.  (Repartitioning time is excluded, as in the
// paper.)
//
// Expected shapes: remapping time initially increases with P then
// gradually decreases ("even though the total volume of data movement
// increases with the number of processors, there are actually more
// processors to share the work"); reassignment time increases with P
// but "remains negligible compared to the adaption and remapping
// times"; adaption time decreases with P.
//
// --compare switches the harness to the partitioner comparison of
// ISSUE 6: the same multi-cycle Local_1 adaption run driven once per
// partitioner variant (mlspectral, hilbert from-scratch, hilbert
// incremental), measuring post-repartition imbalance, edge cut,
// realized elements moved, and end-to-end host wall-clock.  Results go
// to BENCH_sfc.json (--out PATH) and the acceptance criteria are
// enforced by exit status, so both a local run and the CI quick
// configuration fail loudly when the SFC path stops paying for itself.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common.hpp"
#include "parallel/framework.hpp"
#include "simmpi/obs.hpp"

using namespace plum;
using plumbench::BenchConfig;

namespace {

struct Anatomy {
  double adaption_us = 0.0;
  double reassignment_us = 0.0;
  double remapping_us = 0.0;
};

Anatomy run_once(const mesh::Mesh& global, const dual::DualGraph& dualg,
                 const adapt::Strategy& strategy, int P) {
  const auto proc = plumbench::initial_placement(dualg, P);

  parallel::FrameworkConfig fcfg;
  fcfg.solver_iterations = 0;
  fcfg.balancer.partitioner = "rcb";
  fcfg.balancer.remapper = "heuristic";
  fcfg.balancer.factor = 1;
  fcfg.balancer.use_cost_decision = false;  // always remap: we time it
  fcfg.balancer.imbalance_threshold = 1.0;  // always repartition

  simmpi::Machine machine;
  machine.set_tracing(true);
  const simmpi::MachineReport report =
      machine.run(P, [&](simmpi::Comm& comm) {
        parallel::PlumFramework fw(&comm, global, dualg, proc, fcfg);
        fw.refine_with([&](mesh::Mesh& m) { strategy.apply_refine(m); });
        fw.refresh_weights();
        const auto outcome = fw.balance_only();
        fw.migrate_to(outcome.proc_of_vertex);
      });

  // The anatomy falls straight out of the phase tree: "refine" is the
  // adaption, "balance/reassign" the mapper charge (partitioning lives
  // in its sibling "partition" phase and is excluded, as in the paper),
  // "migrate" the remapping.  All numbers are slowest-rank inclusive
  // simulated time.
  const obs::PhaseReport phases = obs::merge_phases(report);
  const auto wall_max = [&](std::initializer_list<const char*> path) {
    const obs::PhaseReport* n = phases.find(path);
    return n != nullptr ? n->max().wall_us : 0.0;
  };
  Anatomy out;
  out.adaption_us = wall_max({"refine"});
  out.reassignment_us = wall_max({"balance", "reassign"});
  out.remapping_us = wall_max({"migrate"});
  return out;
}

// ---------------------------------------------------------------------------
// Partitioner comparison (--compare)

struct CompareVariant {
  const char* record;      ///< JSON record name ("partcmp_<variant>")
  const char* partitioner; ///< LoadBalancerConfig::partitioner
  bool incremental;        ///< LoadBalancerConfig::sfc_incremental
};

struct CompareRun {
  double wall_us = 0.0;     ///< host wall-clock, whole multi-cycle run
  double imbalance = 0.0;   ///< worst post-repartition imbalance
  double edgecut = 0.0;     ///< last-cycle edge cut
  double moved_total = 0.0; ///< realized elements migrated, all cycles
  double moved_steady = 0.0;///< same, excluding the first (cold) cycle
};

CompareRun run_compare(const mesh::Mesh& global, const dual::DualGraph& dualg,
                       const adapt::Strategy& strategy,
                       const mesh::Sphere& probe, int P,
                       const CompareVariant& v, int cycles) {
  const auto proc = plumbench::initial_placement(dualg, P);

  parallel::FrameworkConfig fcfg;
  fcfg.solver_iterations = 0;  // isolate adapt + balance + migrate
  fcfg.balancer.partitioner = v.partitioner;
  fcfg.balancer.sfc_incremental = v.incremental;
  fcfg.balancer.remapper = "heuristic";
  fcfg.balancer.factor = 1;
  fcfg.balancer.use_cost_decision = false;  // always remap: we count moves
  fcfg.balancer.imbalance_threshold = 1.0;  // always repartition

  CompareRun out;
  simmpi::Machine machine;
  const plumbench::WallTimer t;
  machine.run(P, [&](simmpi::Comm& comm) {
    parallel::PlumFramework fw(&comm, global, dualg, proc, fcfg);
    for (int c = 0; c < cycles; ++c) {
      // Cycle 0 is the cold plan: the full Local_1 refinement, whose
      // rebalance relocates a large share of the mesh for every
      // variant.  The steady-state cycles then track a small transient
      // feature: a probe region refined on odd cycles and coarsened
      // back on even ones.  The weight oscillation is a few percent of
      // a processor's load — large enough that a from-scratch solve
      // chases its quantile targets back and forth every cycle,
      // small enough that the incremental splitter hysteresis rightly
      // ignores it.  (Local_1's own coarsening undoes its refinement
      // exactly, so refine+coarsen in one cycle would be a weight
      // no-op and the balancer would never run.)
      std::function<void(mesh::Mesh&)> mark_refine;
      std::function<void(mesh::Mesh&)> mark_coarsen;
      if (c == 0) {
        mark_refine = [&](mesh::Mesh& m) { strategy.apply_refine(m); };
      } else if (c % 2 == 1) {
        mark_refine = [&](mesh::Mesh& m) {
          adapt::mark_refine_in_sphere(m, probe);
        };
      } else {
        mark_coarsen = [&](mesh::Mesh& m) {
          adapt::mark_coarsen_in_sphere(m, probe);
        };
      }
      const auto stats = fw.cycle(mark_refine, mark_coarsen);
      const std::int64_t moved =
          comm.allreduce_sum(stats.migration.elements_sent);
      // The balance pipeline is replicated-deterministic, so rank 0
      // alone may write the shared result (threads race otherwise).
      if (comm.rank() == 0) {
        out.imbalance = std::max(out.imbalance, stats.balance.partition.imbalance);
        out.edgecut = static_cast<double>(stats.balance.partition.edgecut);
        out.moved_total += static_cast<double>(moved);
        if (c > 0) out.moved_steady += static_cast<double>(moved);
      }
    }
  });
  out.wall_us = t.elapsed_us();
  return out;
}

int run_compare_mode(const BenchConfig& cfg, const std::string& out_path) {
  const int cycles = 7;  // 1 cold + 3 refine/coarsen oscillation pairs
  const mesh::Mesh global = plumbench::paper_mesh(cfg);
  const dual::DualGraph dualg = dual::build_dual_graph(global);
  const auto strategies = plumbench::paper_strategies(global, cfg.seed);
  const adapt::Strategy& strategy = strategies[0];  // Local_1

  // The steady-state probe: a sphere away from the Local_1 region
  // covering ~0.025% of the edges, so each oscillation swings one or
  // two percent of one processor's load — inside the incremental
  // hysteresis band, but enough to shift every from-scratch quantile
  // target.
  mesh::Vec3 lo = global.vertices().front().pos, hi = lo;
  for (const auto& vx : global.vertices()) {
    if (!vx.alive) continue;
    lo.x = std::min(lo.x, vx.pos.x);
    lo.y = std::min(lo.y, vx.pos.y);
    lo.z = std::min(lo.z, vx.pos.z);
    hi.x = std::max(hi.x, vx.pos.x);
    hi.y = std::max(hi.y, vx.pos.y);
    hi.z = std::max(hi.z, vx.pos.z);
  }
  const mesh::Vec3 size = hi - lo;
  const mesh::Vec3 pc =
      lo + mesh::Vec3{0.75 * size.x, 0.75 * size.y, 0.75 * size.z};
  const mesh::Sphere probe{
      pc, adapt::calibrate_sphere_radius(global, pc, 0.00025)};

  static constexpr CompareVariant kVariants[] = {
      {"partcmp_mlspectral", "mlspectral", false},
      {"partcmp_hilbert", "hilbert", false},
      {"partcmp_hilbert_inc", "hilbert", true},
  };

  JsonEmitter json("sfc_partcmp");
  Table t("partitioner comparison, Local_1, " + std::to_string(cycles) +
          " cycles, n=" + std::to_string(cfg.n) + " (host wall-clock)");
  t.header({"P", "variant", "imbalance", "edgecut", "moved", "moved steady",
            "wall ms"})
      .precision(4);

  // The acceptance criteria are checked at the largest P of the sweep
  // (the regime the SFC path exists for); smaller P are reported only.
  int failures = 0;
  for (const int P : cfg.procs) {
    if (P < 2) continue;
    CompareRun runs[3];
    for (std::size_t v = 0; v < 3; ++v) {
      runs[v] =
          run_compare(global, dualg, strategy, probe, P, kVariants[v], cycles);
      const CompareRun& r = runs[v];
      json.add(kVariants[v].record,
               {{"n", static_cast<double>(cfg.n)},
                {"P", static_cast<double>(P)},
                {"wall_us", r.wall_us},
                {"imbalance", r.imbalance},
                {"edgecut", r.edgecut},
                {"elements_moved", r.moved_total},
                {"elements_moved_steady", r.moved_steady}});
      t.row({static_cast<long long>(P), std::string(kVariants[v].record + 8),
             r.imbalance, static_cast<long long>(r.edgecut),
             static_cast<long long>(r.moved_total),
             static_cast<long long>(r.moved_steady), r.wall_us / 1000.0});
      std::fprintf(stderr, "  [compare] %s P=%d done (%.1f ms)\n",
                   kVariants[v].record, P, runs[v].wall_us / 1000.0);
    }
    if (P != cfg.procs.back()) continue;

    const CompareRun& ml = runs[0];
    const CompareRun& hb = runs[1];
    const CompareRun& inc = runs[2];
    // 1. Quality: hilbert imbalance within 1.1x of mlspectral's.
    const bool imb_ok = hb.imbalance <= ml.imbalance * 1.1 + 1e-9;
    // 2. Speed: hilbert wins end-to-end.  At quick scale (n < 12) the
    //    partition solve is a sliver of the run, so allow 15% noise
    //    instead of demanding a strict win on a ~100 ms measurement.
    const double slack = cfg.n >= 12 ? 1.0 : 1.15;
    const bool wall_ok = hb.wall_us <= ml.wall_us * slack;
    // 3. Similarity: incremental moves <= half of from-scratch hilbert
    //    on the steady-state cycles (after the cold first plan).
    const bool moved_ok = inc.moved_steady * 2.0 <= hb.moved_steady ||
                          (inc.moved_steady == 0.0 && hb.moved_steady == 0.0);
    std::printf("criteria[P=%d]: hilbert imbalance %.4f <= 1.1x mlspectral "
                "%.4f: %s\n",
                P, hb.imbalance, ml.imbalance, imb_ok ? "yes" : "NO");
    std::printf("criteria[P=%d]: hilbert wall %.1f ms <= %.2fx mlspectral "
                "%.1f ms: %s\n",
                P, hb.wall_us / 1000.0, slack, ml.wall_us / 1000.0,
                wall_ok ? "yes" : "NO");
    std::printf("criteria[P=%d]: incremental steady moved %lld <= 0.5x "
                "from-scratch %lld: %s\n",
                P, static_cast<long long>(inc.moved_steady),
                static_cast<long long>(hb.moved_steady),
                moved_ok ? "yes" : "NO");
    failures += !imb_ok + !wall_ok + !moved_ok;
  }
  plumbench::print_table(t, cfg);

  if (!json.write(out_path)) return 1;
  std::printf("wrote %s\n", out_path.c_str());
  if (failures > 0) {
    std::fprintf(stderr, "FAILED: %d acceptance criteria violated\n", failures);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // --compare and --out are local to this harness; strip them before
  // the shared parser (which rejects flags it does not know).
  bool compare = false;
  bool procs_given = false;
  bool n_given = false;
  std::string out_path = "BENCH_sfc.json";
  std::vector<char*> rest = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--compare") == 0) {
      compare = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      if (std::strcmp(argv[i], "--procs") == 0) procs_given = true;
      if (std::strcmp(argv[i], "--n") == 0 ||
          std::strcmp(argv[i], "--quick") == 0) {
        n_given = true;
      }
      rest.push_back(argv[i]);
    }
  }
  int rest_argc = static_cast<int>(rest.size());
  BenchConfig cfg = plumbench::parse_args(rest_argc, rest.data());
  if (compare) {
    // The comparison regime is n=16, P in {2,4,8} — the acceptance
    // configuration of ISSUE 6, criteria binding at the largest P.
    // Explicit --n/--quick/--procs override.
    if (!n_given) cfg.n = 16;
    if (!procs_given) cfg.procs = {2, 4, 8};
    return run_compare_mode(cfg, out_path);
  }
  const mesh::Mesh global = plumbench::paper_mesh(cfg);
  const dual::DualGraph dualg = dual::build_dual_graph(global);
  const auto strategies = plumbench::paper_strategies(global, cfg.seed);

  for (int s : {0, 1}) {  // Local_1, Local_2
    Table t(std::string("Fig. 9") + (s == 0 ? "(a)" : "(b)") +
            " — anatomy of execution time, " + strategies[s].name() +
            " refinement (simulated ms)");
    t.header({"P", "adaption", "reassignment", "remapping"}).precision(3);
    std::vector<Anatomy> series;
    for (const int P : cfg.procs) {
      if (P < 2) continue;  // remapping needs somewhere to move data
      series.push_back(
          run_once(global, dualg, strategies[static_cast<std::size_t>(s)], P));
      const Anatomy& a = series.back();
      t.row({static_cast<long long>(P), a.adaption_us / 1000.0,
             a.reassignment_us / 1000.0, a.remapping_us / 1000.0});
      std::fprintf(stderr, "  [fig9] %s P=%d done\n",
                   strategies[static_cast<std::size_t>(s)].name(), P);
    }
    plumbench::print_table(t, cfg);

    // Shape checks.
    bool reassign_negligible = true;
    for (const auto& a : series) {
      if (a.reassignment_us > 0.5 * std::max(a.adaption_us, a.remapping_us)) {
        reassign_negligible = false;
      }
    }
    std::printf("shape[%s]: reassignment negligible vs adaption+remapping "
                "at every P: %s\n",
                strategies[static_cast<std::size_t>(s)].name(),
                reassign_negligible ? "yes" : "NO");
    if (series.size() >= 3) {
      const double first = series.front().remapping_us;
      const double last = series.back().remapping_us;
      double peak = 0.0;
      for (const auto& a : series) peak = std::max(peak, a.remapping_us);
      std::printf("shape[%s]: remapping rises then falls with P "
                  "(first %.2fms, peak %.2fms, last %.2fms): %s\n",
                  strategies[static_cast<std::size_t>(s)].name(),
                  first / 1000.0, peak / 1000.0, last / 1000.0,
                  (peak >= first && last <= peak) ? "yes" : "NO");
    }
  }
  return 0;
}
