// Microbenchmark (google-benchmark): serial 3D_TAG kernel throughput —
// marking, pattern upgrade, subdivision, coarsening, dual-graph
// construction, and the four partitioners.  Not a paper figure; these
// are the ablation numbers behind the simulated cost-model constants.
#include <benchmark/benchmark.h>

#include "adapt/adaptor.hpp"
#include "adapt/marking.hpp"
#include "dualgraph/dual_graph.hpp"
#include "mesh/box_mesh.hpp"
#include "partition/partitioner.hpp"

namespace {

using namespace plum;

void BM_BoxMeshGeneration(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mesh::make_cube_mesh(n));
  }
  state.SetItemsProcessed(state.iterations() * 6 * n * n * n);
}
BENCHMARK(BM_BoxMeshGeneration)->Arg(8)->Arg(16)->Unit(
    benchmark::kMillisecond);

void BM_RefineRandom(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const double frac = static_cast<double>(state.range(1)) / 100.0;
  const mesh::Mesh initial = mesh::make_cube_mesh(n);
  std::int64_t created = 0;
  for (auto _ : state) {
    state.PauseTiming();
    mesh::Mesh m = initial;
    adapt::mark_refine_random(m, frac, /*seed=*/7);
    state.ResumeTiming();
    const auto r = adapt::refine_marked(m);
    created += r.elements_created;
  }
  state.SetItemsProcessed(created);
  state.SetLabel("elements created/s");
}
BENCHMARK(BM_RefineRandom)
    ->Args({8, 10})
    ->Args({8, 35})
    ->Args({12, 35})
    ->Unit(benchmark::kMillisecond);

void BM_CoarsenAll(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  mesh::Mesh refined = mesh::make_cube_mesh(n);
  adapt::mark_refine_random(refined, 0.35, /*seed=*/7);
  adapt::refine_marked(refined);
  std::int64_t removed = 0;
  for (auto _ : state) {
    state.PauseTiming();
    mesh::Mesh m = refined;
    adapt::mark_coarsen_all_refined(m);
    state.ResumeTiming();
    const auto r = adapt::coarsen_and_refine(m);
    removed += r.elements_removed;
  }
  state.SetItemsProcessed(removed);
  state.SetLabel("elements removed/s");
}
BENCHMARK(BM_CoarsenAll)->Arg(8)->Arg(12)->Unit(benchmark::kMillisecond);

void BM_DualGraphBuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const mesh::Mesh m = mesh::make_cube_mesh(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dual::build_dual_graph(m));
  }
  state.SetItemsProcessed(state.iterations() * m.num_active_elements());
}
BENCHMARK(BM_DualGraphBuild)->Arg(12)->Arg(22)->Unit(
    benchmark::kMillisecond);

void BM_Partitioner(benchmark::State& state) {
  const auto names = partition::partitioner_names();
  const auto& name = names[static_cast<std::size_t>(state.range(0))];
  const int k = static_cast<int>(state.range(1));
  const mesh::Mesh m = mesh::make_cube_mesh(12);
  const dual::DualGraph g = dual::build_dual_graph(m);
  std::int64_t cut = 0;
  for (auto _ : state) {
    const auto r = partition::make_partitioner(name)->partition(g, k);
    cut = r.edgecut;
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(name + " k=" + std::to_string(k) +
                 " cut=" + std::to_string(cut));
}
BENCHMARK(BM_Partitioner)
    ->Args({0, 16})
    ->Args({1, 16})
    ->Args({2, 16})
    ->Args({3, 16})
    ->Args({0, 64})
    ->Args({3, 64})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
