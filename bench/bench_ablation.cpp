// Ablation bench (beyond the paper's figures): what the similarity-
// matrix machinery and the partitioner choice actually buy.
//
//   (a) Remapper ablation — for the Local_1 scenario, compare the
//       heuristic/optimal mappers against the identity and random
//       baselines on elements moved and message sets (the paper never
//       quantifies the baseline; this shows why reassignment matters).
//   (b) Partitioner ablation — edge cut, imbalance, and resulting
//       data movement for rcb / rib / spectral / multilevel on the
//       post-refinement weighted dual graph.
#include <cstdio>

#include "balance/cost_model.hpp"
#include "balance/remapper.hpp"
#include "common.hpp"

using namespace plum;
using plumbench::BenchConfig;

int main(int argc, char** argv) {
  const BenchConfig cfg = plumbench::parse_args(argc, argv);
  const mesh::Mesh initial = plumbench::paper_mesh(cfg);
  dual::DualGraph dualg = dual::build_dual_graph(initial);

  const int P = cfg.procs.back();
  // Current placement is where the data sat *before* adaption (computed
  // on the uniform initial weights).
  const auto current = plumbench::initial_placement(dualg, P);

  mesh::Mesh adapted = initial;
  const auto strategy =
      adapt::make_strategy(adapt::StrategyKind::kLocal1, initial, cfg.seed);
  strategy.apply_refine(adapted);
  adapt::refine_marked(adapted);
  dual::update_weights(dualg, adapted);

  // --- (a) remapper ablation ---------------------------------------------
  {
    const auto newpart =
        partition::make_partitioner("rcb")->partition(dualg, P);
    const auto s = balance::SimilarityMatrix::build(
        current, newpart.part, dualg.wremap, P, 1);
    Table t("Ablation (a) — remappers on Local_1 @P=" + std::to_string(P) +
            ": data movement");
    t.header({"remapper", "objective", "elements moved", "message sets"});
    for (const auto& name : balance::remapper_names()) {
      const auto a = balance::make_remapper(name)->assign(s);
      const auto rc = balance::remap_cost(s, a, balance::CostParams{});
      t.row({name, static_cast<long long>(a.objective),
             static_cast<long long>(rc.elements_moved),
             static_cast<long long>(rc.message_sets)});
    }
    plumbench::print_table(t, cfg);
  }

  // --- (b) partitioner ablation --------------------------------------------
  {
    Table t("Ablation (b) — partitioners on the Local_1-refined dual graph "
            "@k=" + std::to_string(P));
    t.header({"partitioner", "edge cut", "imbalance", "elements moved "
              "(heuristic map)", "wall ms"})
        .precision(3);
    for (const auto& name : partition::partitioner_names()) {
      plumbench::WallTimer timer;
      const auto part =
          partition::make_partitioner(name)->partition(dualg, P);
      const double ms = timer.elapsed_us() / 1000.0;
      const auto s = balance::SimilarityMatrix::build(
          current, part.part, dualg.wremap, P, 1);
      const auto a = balance::heuristic_assign(s);
      t.row({name, static_cast<long long>(part.edgecut), part.imbalance,
             static_cast<long long>(s.total() - a.objective), ms});
    }
    plumbench::print_table(t, cfg);
  }

  // --- (c') communication-aware partitioning (weighted dual edges) --------
  {
    // The paper's model includes edge weights ("models the runtime
    // communication") but its tests keep them uniform.  Refreshing them
    // to leaf-face counts lets the partitioner see where the halo is
    // expensive; both partitions are judged against the TRUE weighted
    // communication volume.
    dual::DualGraph weighted = dualg;
    dual::update_edge_weights(weighted, adapted);
    Table t("Ablation (c') — communication-aware vs blind partitioning "
            "@k=" + std::to_string(P) + " (weighted cut = halo volume)");
    t.header({"partitioner", "blind cut", "aware cut", "aware/blind"})
        .precision(3);
    for (const std::string name : {"rcb", "multilevel"}) {
      const auto blind =
          partition::make_partitioner(name)->partition(dualg, P);
      const auto aware =
          partition::make_partitioner(name)->partition(weighted, P);
      const auto blind_eval =
          partition::evaluate_partition(weighted, blind.part, P);
      t.row({name, static_cast<long long>(blind_eval.edgecut),
             static_cast<long long>(aware.edgecut),
             static_cast<double>(aware.edgecut) /
                 static_cast<double>(blind_eval.edgecut)});
    }
    plumbench::print_table(t, cfg);
  }

  // --- (c) superelement agglomeration (the paper's §5 escape hatch) -------
  {
    Table t("Ablation (c) — superelement agglomeration before partitioning");
    t.header({"group size", "coarse |V|", "edge cut", "imbalance",
              "partition wall ms"})
        .precision(3);
    for (const int gs : {1, 4, 16, 64}) {
      const auto agg = dual::agglomerate(dualg, gs);
      plumbench::WallTimer timer;
      const auto cpart =
          partition::make_partitioner("multilevel")->partition(agg.coarse, P);
      const double ms = timer.elapsed_us() / 1000.0;
      const auto fine = dual::expand_partition(agg, cpart.part);
      const auto eval = partition::evaluate_partition(dualg, fine, P);
      t.row({static_cast<long long>(gs),
             static_cast<long long>(agg.coarse.num_vertices()),
             static_cast<long long>(eval.edgecut), eval.imbalance, ms});
    }
    plumbench::print_table(t, cfg);
  }
  return 0;
}
